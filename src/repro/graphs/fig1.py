"""The Fig. 1 counterexample graphs of Lemma 1.

Lemma 1 shows that a delimited algebra maps to a preferred spanning tree
iff it is monotone and selective; the "only if" direction is proved by
three counterexample graphs, one per way selectivity can fail:

* **Fig. 1a** — auto-selectivity fails: some ``w`` with ``w ⊕ w ≻ w``.
  A triangle with all edges ``w``: every direct edge is the unique
  preferred path, and three such paths cannot live in one spanning tree.
* **Fig. 1b** — ``w1 ≺ w2`` but ``w1 ⊕ w2 ≻ w2``.  A triangle with edges
  ``w1, w2, w2``: again all preferred paths are the direct edges.
* **Fig. 1c** — ``w1 = w2`` (equal preference) but ``w1 ⊕ w2 ≻ w2``.  A
  4-cycle with alternating weights ``w1, w2, w1, w2``: preferred paths
  between adjacent nodes are the direct edges; the two diagonal pairs use
  two-hop paths (of weight ``w1 ⊕ w2 ≺ phi``, by delimitedness).

These builders take the offending weights as parameters, so the same
constructions serve any algebra whose selectivity check produced a
counterexample.  Nodes are numbered from 1, matching the paper's figure.
"""

from __future__ import annotations

import networkx as nx

from repro.graphs.weighting import WEIGHT_ATTR


def fig1a(w, attr: str = WEIGHT_ATTR) -> nx.Graph:
    """Triangle with all edges of weight *w* (auto-selectivity violation)."""
    graph = nx.Graph()
    graph.add_edge(1, 2, **{attr: w})
    graph.add_edge(2, 3, **{attr: w})
    graph.add_edge(1, 3, **{attr: w})
    return graph


def fig1b(w1, w2, attr: str = WEIGHT_ATTR) -> nx.Graph:
    """Triangle with edges ``(1,2)=w1``, ``(2,3)=w2``, ``(1,3)=w2``.

    For ``w1 ≺ w2`` with ``w1 ⊕ w2 ≻ w2`` the preferred paths are exactly
    the direct edges.
    """
    graph = nx.Graph()
    graph.add_edge(1, 2, **{attr: w1})
    graph.add_edge(2, 3, **{attr: w2})
    graph.add_edge(1, 3, **{attr: w2})
    return graph


def fig1c(w1, w2, attr: str = WEIGHT_ATTR) -> nx.Graph:
    """4-cycle ``1-2-4-3-1`` with alternating weights ``w1, w2, w1, w2``.

    For equally preferred ``w1 = w2`` with ``w1 ⊕ w2 ≻ w2`` the preferred
    paths between adjacent nodes are the direct edges (which do not form a
    spanning tree), while the diagonal pairs ``(1,4)`` and ``(2,3)`` use
    two-hop paths.
    """
    graph = nx.Graph()
    graph.add_edge(1, 2, **{attr: w1})
    graph.add_edge(2, 4, **{attr: w2})
    graph.add_edge(4, 3, **{attr: w1})
    graph.add_edge(3, 1, **{attr: w2})
    return graph
