"""The Fig. 2 lower-bound graph family (Theorems 4, 5 and 8).

The construction, following Fraigniaud-Gavoille [2] as adapted in the
paper: start with ``p >= 2`` center nodes ``c_i``, attach ``delta >= 2``
intermediate nodes ``z_{i,j}`` to each center with edges of weight ``w_i``,
and add target nodes ``t``, one per *word* of length ``p`` over the
alphabet ``{1, ..., delta}``; target ``t`` with word ``a`` is connected to
``z_{i, a_i}`` for every ``i``, again with weight ``w_i``.

Varying the word assigned to each target yields a family of
``delta^(p * |T|)`` distinct graphs; encoding the preferred (min-hop) paths
from the centers distinguishes ``delta^|T|`` local forwarding functions at
each center, hence ``Omega(|T| log delta) = Omega(n log delta)`` bits
(Theorem 4).  Crucially, any *stretch-k* scheme must encode the very same
paths, because condition (1) makes every non-preferred path worse than
stretch k.

Two variants are provided:

* :func:`fig2_instance` — the undirected, abstract-weighted graph used by
  Theorem 4 (weights ``w_1..w_p`` supplied by the caller);
* :func:`fig2_bgp_instance` — the directed provider-customer labelling of
  Theorem 5 (all construction arcs are ``c`` downhill from the centers),
  optionally peer-augmented per Theorem 8 so that A1 holds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import networkx as nx

from repro.algebra.bgp import CUSTOMER, PEER, PROVIDER
from repro.exceptions import GraphError
from repro.graphs.weighting import WEIGHT_ATTR

Word = Tuple[int, ...]


@dataclass(frozen=True)
class Fig2Instance:
    """One member of the Fig. 2 family.

    ``centers[i]`` is ``c_i``; ``intermediates[i][j]`` is ``z_{i, j+1}``;
    ``words`` maps each target node to its word (1-based symbols, as in the
    paper's caption ``[1,1], [1,2], ...``).
    """

    graph: nx.Graph
    p: int
    delta: int
    centers: Tuple[int, ...]
    intermediates: Tuple[Tuple[int, ...], ...]
    words: Dict[int, Word] = field(default_factory=dict)

    @property
    def targets(self) -> Tuple[int, ...]:
        return tuple(self.words)

    @property
    def n(self) -> int:
        return self.graph.number_of_nodes()


def all_words(p: int, delta: int):
    """All delta^p words of length *p* over the alphabet ``{1..delta}``."""
    return itertools.product(range(1, delta + 1), repeat=p)


def _validate(p: int, delta: int, words: Sequence[Word]):
    if p < 2:
        raise GraphError("the Fig. 2 construction needs p >= 2 centers")
    if delta < 2:
        raise GraphError("the Fig. 2 construction needs delta >= 2")
    for word in words:
        if len(word) != p or not all(1 <= s <= delta for s in word):
            raise GraphError(f"word {word!r} is not a length-{p} word over 1..{delta}")


def fig2_instance(p: int, delta: int, weights: Sequence, words: Optional[Sequence[Word]] = None,
                  attr: str = WEIGHT_ATTR) -> Fig2Instance:
    """Build the undirected Fig. 2 graph for the given target *words*.

    *weights* is the length-``p`` sequence ``[w_1, ..., w_p]`` labelling all
    edges incident to center ``c_i``'s branch.  *words* defaults to all
    ``delta^p`` words (the fully populated instance drawn in Fig. 2).
    """
    if words is None:
        words = list(all_words(p, delta))
    else:
        words = [tuple(w) for w in words]
    _validate(p, delta, words)
    if len(weights) != p:
        raise GraphError(f"need exactly p={p} weights, got {len(weights)}")

    graph = nx.Graph()
    centers = tuple(range(p))
    intermediates = tuple(
        tuple(p + i * delta + j for j in range(delta)) for i in range(p)
    )
    for i in range(p):
        for j in range(delta):
            graph.add_edge(centers[i], intermediates[i][j], **{attr: weights[i]})
    first_target = p + p * delta
    word_of: Dict[int, Word] = {}
    for index, word in enumerate(words):
        t = first_target + index
        word_of[t] = word
        for i, symbol in enumerate(word):
            graph.add_edge(intermediates[i][symbol - 1], t, **{attr: weights[i]})
    return Fig2Instance(graph, p, delta, centers, intermediates, word_of)


def fig2_family(p: int, delta: int, weights: Sequence, num_targets: int,
                attr: str = WEIGHT_ATTR):
    """Iterate over every member of the family with *num_targets* targets.

    Yields ``delta^(p * num_targets)`` instances — all assignments of words
    to the fixed target set.  Keep the parameters tiny; the point of the
    enumeration is the information-theoretic counting of
    :mod:`repro.lowerbounds.counting`.
    """
    vocabulary = list(all_words(p, delta))
    for assignment in itertools.product(vocabulary, repeat=num_targets):
        yield fig2_instance(p, delta, weights, words=assignment, attr=attr)


def fig2_bgp_instance(p: int, delta: int, words: Optional[Sequence[Word]] = None,
                      peer_augment: bool = False, attr: str = WEIGHT_ATTR) -> Fig2Instance:
    """The Theorem 5 / Theorem 8 directed labelling of the Fig. 2 graph.

    Every construction edge is directed *down* from the centers: arcs
    ``c_i -> z_{i,j}`` and ``z_{i,j} -> t`` carry label ``c`` (customer) and
    their reverses carry ``p`` (provider).  Preferred paths from centers to
    targets then have weight ``c`` while every alternative path climbs a
    provider arc after a customer arc and is untraversable (``phi``).

    With ``peer_augment=True``, a peer (``r``) arc pair is added between
    every node pair with no traversable path, exactly as in the Theorem 8
    proof, making assumption A1 hold while preferred paths stay the same
    two-hop customer paths.
    """
    if words is None:
        words = list(all_words(p, delta))
    else:
        words = [tuple(w) for w in words]
    _validate(p, delta, words)

    digraph = nx.DiGraph()
    centers = tuple(range(p))
    intermediates = tuple(
        tuple(p + i * delta + j for j in range(delta)) for i in range(p)
    )

    def add_customer_arc(u, v):
        digraph.add_edge(u, v, **{attr: CUSTOMER})
        digraph.add_edge(v, u, **{attr: PROVIDER})

    for i in range(p):
        for j in range(delta):
            add_customer_arc(centers[i], intermediates[i][j])
    first_target = p + p * delta
    word_of: Dict[int, Word] = {}
    for index, word in enumerate(words):
        t = first_target + index
        word_of[t] = word
        for i, symbol in enumerate(word):
            add_customer_arc(intermediates[i][symbol - 1], t)

    instance = Fig2Instance(digraph, p, delta, centers, intermediates, word_of)
    if peer_augment:
        _peer_augment(instance, attr)
    return instance


def _peer_augment(instance: Fig2Instance, attr: str):
    """Add ``r`` arcs between node pairs with no traversable B2 path.

    Traversable label sequences are ``p* (r|eps) c*``; before augmentation
    there are no ``r`` arcs, so reachability means "climb providers, then
    descend customers".  The peer arcs make the graph satisfy A1 without
    ever improving on an existing customer path (Theorem 8's preference is
    ``c ≺ r``).
    """
    digraph = instance.graph
    up = {
        node: _closure(digraph, node, PROVIDER, attr) for node in digraph.nodes()
    }
    down = {
        node: _closure(digraph, node, CUSTOMER, attr) for node in digraph.nodes()
    }
    nodes = sorted(digraph.nodes())
    for u in nodes:
        for v in nodes:
            if u >= v:
                continue
            # u reaches v iff some x with u ->p* x and x ->c* v exists; the
            # reverse direction is symmetric because reversing a p*c* path
            # yields another p*c* path.
            reachable = any(v in down[x] for x in up[u] | {u})
            if not reachable:
                digraph.add_edge(u, v, **{attr: PEER})
                digraph.add_edge(v, u, **{attr: PEER})


def _closure(digraph, node, label, attr):
    """Nodes reachable from *node* using only arcs with the given label."""
    seen = {node}
    stack = [node]
    while stack:
        current = stack.pop()
        for _, nxt, data in digraph.out_edges(current, data=True):
            if data[attr] == label and nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return seen - {node}
