"""Exception hierarchy for the compact policy routing library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class AlgebraError(ReproError):
    """An algebra is malformed or an operation received an invalid weight."""


class AxiomViolationError(AlgebraError):
    """A routing-algebra axiom (closure, associativity, total order, ...) failed.

    Carries the offending witness so callers can report precise
    counterexamples, mirroring the counterexample-driven proofs in the paper.
    """

    def __init__(self, axiom, witness, message=None):
        self.axiom = axiom
        self.witness = witness
        super().__init__(message or f"axiom {axiom!r} violated by witness {witness!r}")


class NotApplicableError(ReproError):
    """A routing scheme cannot implement the given algebra on the given graph.

    Raised, e.g., when tree routing is requested for a non-selective algebra
    (Theorem 1 requires selectivity + monotonicity), or when the Cowen scheme
    is requested for a non-delimited or non-regular algebra (Theorem 3).
    """


class RoutingError(ReproError):
    """Packet forwarding failed (loop detected, no route, bad header)."""


class DeliveryError(RoutingError):
    """A packet was not delivered to its destination."""

    def __init__(self, source, target, reason, path_so_far=None):
        self.source = source
        self.target = target
        self.reason = reason
        self.path_so_far = list(path_so_far or [])
        super().__init__(f"packet {source}->{target} not delivered: {reason}")


class GraphError(ReproError):
    """A graph violates a structural precondition (connectivity, A1/A2, ...)."""
