"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``classify <policy>`` — print the algebraic profile and the theorem-
  driven classification of a catalog policy;
* ``route <policy>`` — generate a topology, build the prescribed scheme,
  route all pairs and report delivery/stretch/memory (``--trace`` prints
  the hop-by-hop packet event log, ``--json`` emits the machine-readable
  report);
* ``evaluate <policy>`` — the :func:`repro.run_experiment` facade:
  build + evaluate under one seed, with ``--pairs N`` sampling,
  ``--workers N`` sharded parallel evaluation, a live progress line on a
  TTY (``--progress``/``--quiet``, ``REPRO_NO_PROGRESS``) and
  ``--record-run DIR`` durable run manifests;
* ``profile <policy>`` — run the full pipeline with telemetry enabled and
  dump phase timers, metrics and protocol message counts as JSON
  (``--workers N`` parallelizes the pair evaluation; the same
  progress/recording flags as ``evaluate``);
* ``serve <policy>`` — a persistent :class:`repro.service.RoutingService`
  speaking line-delimited JSON over stdin/stdout (or TCP with
  ``--port``): scheme, oracle trees and compiled graph stay warm across
  route/stretch/memory queries, and update/fail/restore ops mutate the
  topology with surgical invalidation (see ``docs/SERVICE.md``);
* ``report <dir>`` — render a run recorded with ``--record-run``:
  phase tree, per-shard timeline with heartbeats and stragglers,
  fallback causes, counters (``--json`` for the raw manifest + events);
* ``scale <policy>`` — measure per-node table bits over growing n and fit
  the scaling class (the Table 1 experiment for one policy);
* ``table1`` — the full six-row Table 1 reproduction;
* ``golden record|check`` — the packet-trace regression harness: record
  the pinned golden suite to ``tests/golden/*.jsonl``, or replay it and
  fail with a first-divergence report when any routing decision (or the
  fixture serialization itself) changed;
* ``policies`` — list the catalog.

Examples::

    python -m repro classify widest-path
    python -m repro route shortest-path --n 64 --topology barabasi-albert --compact
    python -m repro route widest-path --n 32 --trace
    python -m repro evaluate shortest-path --n 400 --topology waxman --workers 4
    python -m repro evaluate shortest-path --n 400 --workers 4 --record-run runs/r1
    python -m repro report runs/r1
    python -m repro profile widest-path --n 64
    python -m repro scale shortest-widest-path --sizes 16,24,32

Invalid policy or topology names exit with a one-line error and a nonzero
status — never a traceback.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time
from typing import Optional

import repro.obs as obs
from repro.obs import events as obs_events
from repro.obs import progress as obs_progress
from repro.algebra import (
    MostReliablePath,
    prefer_customer_algebra,
    ShortestPath,
    UsablePath,
    WidestPath,
    empirical_profile,
    provider_customer_algebra,
    shortest_widest_path,
    valley_free_algebra,
    widest_shortest_path,
)
from repro.core import (
    EvaluationOptions,
    build_scheme,
    classify,
    fit_scaling,
    oracle_cache,
    run_experiment,
)
from repro.exceptions import ReproError
from repro.graphs import (
    FAMILIES,
    assign_random_weights,
    coned_as_topology,
    provider_tree_topology,
)
from repro.routing import memory_report

#: name -> (factory, is_bgp)
POLICIES = {
    "shortest-path": (ShortestPath, False),
    "widest-path": (WidestPath, False),
    "most-reliable-path": (MostReliablePath, False),
    "usable-path": (UsablePath, False),
    "widest-shortest-path": (widest_shortest_path, False),
    "shortest-widest-path": (shortest_widest_path, False),
    "bgp-provider-customer": (provider_customer_algebra, True),
    "bgp-valley-free": (valley_free_algebra, True),
    "bgp-prefer-customer": (prefer_customer_algebra, True),
}


def _policy(name: str):
    if name not in POLICIES:
        raise SystemExit(
            f"unknown policy {name!r}; run `python -m repro policies` for the list"
        )
    factory, is_bgp = POLICIES[name]
    return factory(), is_bgp


def _parse_sizes(text: str, minimum: int = 1) -> list:
    try:
        sizes = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(
            f"--sizes must be comma-separated integers, got {text!r}"
        ) from None
    if len(sizes) < minimum:
        raise SystemExit(f"--sizes needs at least {minimum} comma-separated values")
    return sizes


def _topology(algebra, is_bgp, family: str, n: int, seed: int):
    rng = random.Random(seed)
    if is_bgp:
        if family == "provider-tree" or algebra.name.endswith("(B1)"):
            return provider_tree_topology(n, rng=rng, max_providers=2)
        scale = max(1, n // 12)
        return coned_as_topology(3, scale, 3 * scale, rng=rng)
    if family not in FAMILIES:
        raise SystemExit(f"unknown topology {family!r}; pick one of {sorted(FAMILIES)}")
    graph = FAMILIES[family](n, rng)
    assign_random_weights(graph, algebra, rng=rng)
    return graph


def cmd_policies(_args) -> int:
    for name in sorted(POLICIES):
        algebra, _ = _policy(name)
        print(f"{name:28s} [{algebra.declared_properties().summary()}]")
    return 0


def cmd_classify(args) -> int:
    algebra, _ = _policy(args.policy)
    if args.measure:
        profile = empirical_profile(algebra, rng=random.Random(args.seed))
        print(f"measured properties: [{profile.summary()}]")
    verdict = classify(algebra)
    print(verdict.summary())
    for reason in verdict.reasons:
        print(f"  - {reason}")
    return 0


def _print_trace(trace) -> None:
    # delivered is None while finish() has not run — e.g. the local
    # routing function raised mid-route; that is *unfinished*, not FAILED.
    if trace.delivered is None:
        state = "UNFINISHED (no verdict recorded)"
    elif trace.delivered:
        state = "delivered"
    else:
        state = f"FAILED ({trace.reason})"
    print(f"trace {trace.source!r} -> {trace.target!r}: "
          f"{trace.hops} hops, {state}")
    for event in trace.events:
        bits = f" header={event.header!r}"
        if event.header_bits is not None:
            bits += f" ({event.header_bits}b)"
        if event.action == "forward":
            print(f"  [{event.index}] {event.node!r} --port {event.port}--> "
                  f"{event.next_node!r}{bits}")
        else:
            print(f"  [{event.index}] {event.node!r} deliver{bits}")


def cmd_route(args) -> int:
    algebra, is_bgp = _policy(args.policy)
    graph = _topology(algebra, is_bgp, args.topology, args.n, args.seed)
    mode = "compact" if args.compact else "auto"
    n = graph.number_of_nodes()
    was_enabled = obs.enabled()
    if args.trace:
        obs.enable()
    run_ui = _RunTelemetry("route", args, n * (n - 1), {
        "policy": args.policy, "topology": args.topology, "n": n,
        "m": graph.number_of_edges(), "seed": args.seed, "mode": mode,
    })
    try:
        result = run_experiment(
            graph, algebra, mode=mode,
            options=EvaluationOptions(trace_limit=args.trace_limit,
                                      rng=args.seed + 1),
        )
        report = result.report
    except BaseException:
        run_ui.abort()
        if not was_enabled:
            obs.disable()
        raise
    run_ui.finish(report)
    if not was_enabled:
        obs.disable()
    if args.json:
        payload = {
            "policy": args.policy,
            "topology": {
                "family": args.topology,
                "n": graph.number_of_nodes(),
                "m": graph.number_of_edges(),
            },
            "report": obs.report_to_dict(report),
        }
        print(obs.to_json(payload))
    else:
        print(f"topology: n={graph.number_of_nodes()} m={graph.number_of_edges()}")
        print(report.summary())
        if args.trace:
            for trace in report.traces:
                _print_trace(trace)
            if report.traces_dropped:
                print(f"({report.traces_dropped} further traced route(s) "
                      f"dropped at the capture limit of {args.trace_limit})")
        if report.failures:
            print(f"failures (first {len(report.failures)}): {report.failures}")
    return 1 if report.failures else 0


class _RunTelemetry:
    """Live progress + durable run recording around one CLI experiment.

    Activated when the user asked for live progress (``--progress``, or a
    TTY without ``--quiet``/``--json``/``REPRO_NO_PROGRESS``) or for a
    durable record (``--record-run DIR``).  Either way the run-event
    stream (and full telemetry, which the manifest snapshots) is switched
    on for the duration of the command and restored afterwards; a
    ``run_started``/``run_finished`` pair brackets the experiment.
    """

    def __init__(self, command: str, args, total_pairs: Optional[int],
                 config: dict, reset: bool = True):
        self.command = command
        self.config = config
        self.total_pairs = total_pairs
        self.record_dir = getattr(args, "record_run", None)
        json_mode = bool(getattr(args, "json", False))
        show = obs_progress.should_show_progress(
            progress=getattr(args, "progress", False),
            quiet=getattr(args, "quiet", False),
            json_mode=json_mode, stream=sys.stderr)
        self.active = bool(self.record_dir) or show
        self.renderer = None
        self.started_at = time.time()
        if not self.active:
            return
        self._was_obs = obs.enabled()
        self._was_events = obs_events.enabled()
        obs.enable()
        obs_events.enable()
        if reset:
            obs.reset_all()
        if show:
            self.renderer = obs_progress.ProgressRenderer(
                sys.stderr, total_pairs=total_pairs, label=command)
            obs_events.set_live_consumer(self.renderer.handle)
        obs_events.emit("run_started", command=command,
                        pairs_total=total_pairs,
                        **{key: value for key, value in config.items()
                           if isinstance(value, (str, int, float))})

    def abort(self) -> None:
        """Tear down renderer and enable-flags without writing a manifest."""
        if not self.active:
            return
        if self.renderer is not None:
            obs_events.set_live_consumer(None)
            self.renderer.close()
            self.renderer = None
        if not self._was_events:
            obs_events.disable()
            obs_events.clear_events()
        if not self._was_obs:
            obs.disable()
        self.active = False

    def finish(self, report=None) -> None:
        """Close the run: final event, manifest + event log, restore state."""
        if not self.active:
            return
        from repro.core import parallel as _parallel
        from repro.paths.kernel import resolve_engine

        finished_at = time.time()
        data = {}
        if report is not None:
            data = {"pairs": report.pairs, "delivered": report.delivered,
                    "optimal": report.optimal}
        obs_events.emit("run_finished",
                        duration_s=finished_at - self.started_at, **data)
        if self.renderer is not None:
            obs_events.set_live_consumer(None)
            self.renderer.close()
            self.renderer = None
        if self.record_dir:
            run_info = _parallel.last_run_info()
            engine = {
                "start_method": run_info.start_method if run_info else "serial",
                "path_engine": resolve_engine(),
                "workers": run_info.workers if run_info else 0,
            }
            snapshot = obs.telemetry_snapshot(include_spans=True)
            manifest = obs_events.build_manifest(
                command=self.command, config=self.config, engine=engine,
                started_at=self.started_at, finished_at=finished_at,
                shards=run_info.shards if run_info else [],
                stragglers=run_info.stragglers if run_info else {},
                recovery=run_info.recovery if run_info else {},
                counters=snapshot["metrics"],
                spans=snapshot["spans"],
                report=obs.report_to_dict(report) if report is not None else None,
            )
            manifest_path, events_path = obs_events.write_run(self.record_dir,
                                                              manifest)
            print(f"recorded run -> {manifest_path} + {events_path}",
                  file=sys.stderr)
        if not self._was_events:
            obs_events.disable()
            obs_events.clear_events()
        if not self._was_obs:
            obs.disable()
        self.active = False


def _print_fallback_cause() -> None:
    """One line on why the parallel engine reverted to serial, if it did.

    A recovered run (shards were lost but retries salvaged them without
    a serial fallback) also gets one line, so worker loss never passes
    silently.
    """
    from repro.core import parallel as _parallel

    fallback = _parallel.last_fallback()
    if fallback is not None:
        print(fallback.summary())
    run_info = _parallel.last_run_info()
    recovery = run_info.recovery if run_info else {}
    if recovery.get("recovered"):
        print(f"recovered from worker loss: "
              f"{recovery.get('shards_lost', 0)} shard(s) lost, "
              f"{recovery.get('shards_retried', 0)} retried over "
              f"{recovery.get('pool_rebuilds', 0)} pool rebuild(s)")


def cmd_evaluate(args) -> int:
    """The one-call experiment facade: build + evaluate under one seed."""
    algebra, is_bgp = _policy(args.policy)
    graph = _topology(algebra, is_bgp, args.topology, args.n, args.seed)
    mode = "compact" if args.compact else "auto"
    options = EvaluationOptions(
        pair_count=args.pairs,
        workers=args.workers,
        shard_size=args.shard_size,
        trace_limit=args.trace_limit,
        rng=args.seed + 1,
    )
    n = graph.number_of_nodes()
    total_pairs = args.pairs if args.pairs is not None else n * (n - 1)
    was_enabled = obs.enabled()
    if args.trace:
        obs.enable()
    run_ui = _RunTelemetry("evaluate", args, total_pairs, {
        "policy": args.policy, "topology": args.topology, "n": n,
        "m": graph.number_of_edges(), "seed": args.seed,
        "pairs": total_pairs, "workers": args.workers or 0,
        "mode": mode,
    })
    try:
        result = run_experiment(graph, algebra, mode=mode, options=options)
        report = result.report
    except BaseException:
        run_ui.abort()
        if not was_enabled:
            obs.disable()
        raise
    run_ui.finish(report)
    if not was_enabled:
        obs.disable()
    if args.json:
        payload = {
            "policy": args.policy,
            "scheme": result.scheme.name,
            "workers": args.workers,
            "topology": {
                "family": args.topology,
                "n": graph.number_of_nodes(),
                "m": graph.number_of_edges(),
            },
            # Parent-process oracle lifecycle: with --workers on the fork
            # path, tree builds happen in the workers and show up in
            # `profile`'s merged telemetry instead.
            "oracle": oracle_cache.stats(),
            "report": obs.report_to_dict(report),
        }
        print(obs.to_json(payload))
    else:
        print(f"topology: n={graph.number_of_nodes()} m={graph.number_of_edges()}")
        print(report.summary())
        _print_fallback_cause()
        stats = oracle_cache.stats()
        print(f"oracle: {stats['trees_built']}/{graph.number_of_nodes()} "
              f"source trees built ({stats['trees_requested']} lookups)")
        if args.trace:
            for trace in report.traces:
                _print_trace(trace)
            if report.traces_dropped:
                print(f"({report.traces_dropped} further traced route(s) "
                      f"dropped at the capture limit of {args.trace_limit})")
        if report.failures:
            print(f"failures (first {len(report.failures)}): {report.failures}")
    return 1 if report.failures else 0


def cmd_profile(args) -> int:
    """End-to-end pipeline under full telemetry; emits one JSON document."""
    algebra, is_bgp = _policy(args.policy)
    was_enabled = obs.enabled()
    obs.enable()
    obs.reset_all()
    run_ui = None
    try:
        graph = _topology(algebra, is_bgp, args.topology, args.n, args.seed)
        mode = "compact" if args.compact else "auto"
        n = graph.number_of_nodes()
        run_ui = _RunTelemetry("profile", args, n * (n - 1), {
            "policy": args.policy, "topology": args.topology, "n": n,
            "m": graph.number_of_edges(), "seed": args.seed,
            "workers": args.workers or 0, "mode": mode,
        }, reset=False)
        result = run_experiment(
            graph, algebra, mode=mode,
            options=EvaluationOptions(trace_limit=args.trace_limit,
                                      workers=args.workers,
                                      rng=args.seed + 1),
        )
        scheme, report = result.scheme, result.report
        run_ui.finish(report)
        run_ui = None

        # Protocol simulations on a copy (fail_edge and friends mutate), so
        # the profile also carries message/convergence accounting.
        # Protocols that do not apply to this instance (digraphs,
        # non-regular algebras) are skipped and listed as such.
        protocols = {}
        from repro.protocols.distance_vector import DistanceVectorSimulation
        from repro.protocols.link_state import LinkStateSimulation
        from repro.protocols.path_vector import PathVectorSimulation

        for name, factory in (
            ("path-vector", lambda: PathVectorSimulation(graph.copy(), algebra)),
            ("distance-vector",
             lambda: DistanceVectorSimulation(graph.copy(), algebra)),
            ("link-state", lambda: LinkStateSimulation(graph.copy(), algebra)),
        ):
            try:
                protocols[name] = factory().run().summary()
            except ReproError as exc:
                protocols[name] = f"skipped: {exc}"

        snapshot = obs.telemetry_snapshot()
    finally:
        if run_ui is not None:
            run_ui.abort()
        if not was_enabled:
            obs.disable()
    from repro.paths.kernel import resolve_engine

    # The path-engine view: which engine resolved, plus its run counters
    # (relaxations / heap_pushes / stale_pops / bucket_engaged) filtered
    # out of the merged metric snapshot.  See docs/PERFORMANCE.md.
    path_counters = {
        name: value
        for name, value in snapshot["metrics"]["counters"].items()
        if name.startswith("path_engine.")
    }
    # The batch sub-view: whether the vectorized engine could run at all
    # (numpy is an optional extra) plus its sweep counters
    # (batch_sweeps / batch_sources / batch_levels / batch_relaxations /
    # batch_improvements / batch_fallbacks).
    from repro.paths import batch as _batch

    batch_counters = {
        name: value
        for name, value in path_counters.items()
        if name.startswith("path_engine.batch_")
    }
    # The query-engine view: the resolved pair-evaluation engine, its
    # fallback counters from the metric snapshot, and the always-on
    # process-local usage stats (profile runs route under telemetry, which
    # itself forces the reference loop — the stats still show what any
    # plain run of the same workload would have used).
    from repro.routing import compiled_query as _compiled_query
    from repro.routing import query_engine as _query_engine

    query_counters = {
        name: value
        for name, value in snapshot["metrics"]["counters"].items()
        if name.startswith("query_engine.")
    }
    payload = {
        "policy": args.policy,
        "scheme": scheme.name,
        "topology": {
            "family": args.topology,
            "n": graph.number_of_nodes(),
            "m": graph.number_of_edges(),
        },
        "phases": snapshot["spans"],
        "metrics": snapshot["metrics"],
        "path_engine": {
            "engine": resolve_engine(),
            "counters": path_counters,
        },
        "batch": {
            "numpy": _batch.numpy_available(),
            "counters": batch_counters,
        },
        "query": {
            "engine": _query_engine.resolve_query_engine(),
            "numpy": _compiled_query.numpy_available(),
            "counters": query_counters,
            "stats": _query_engine.query_stats(),
        },
        "oracle": oracle_cache.stats(),
        "protocols": protocols,
        "report": obs.report_to_dict(report),
    }
    text = obs.to_json(payload)
    if args.output:
        obs.write_json(args.output, payload)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_serve(args) -> int:
    """Start a persistent :class:`~repro.service.RoutingService`.

    The built scheme, oracle trees and compiled graph stay warm across
    requests; ``update_weight``/``fail_link``/``restore_link`` ops mutate
    the topology with surgical invalidation.  Speaks one JSON object per
    line on stdin/stdout (the default) or over TCP with ``--port``; EOF
    or an ``op=shutdown`` request ends the session.  See
    ``docs/SERVICE.md`` for the wire format.
    """
    from repro.service import (
        RoutingService,
        ServiceOptions,
        serve_socket,
        serve_stdio,
    )

    algebra, is_bgp = _policy(args.policy)
    graph = _topology(algebra, is_bgp, args.topology, args.n, args.seed)
    mode = "compact" if args.compact else "auto"
    n = graph.number_of_nodes()
    run_ui = _RunTelemetry("serve", args, None, {
        "policy": args.policy, "topology": args.topology, "n": n,
        "m": graph.number_of_edges(), "seed": args.seed, "mode": mode,
    })
    try:
        service = RoutingService(
            graph, algebra, ServiceOptions(mode=mode, seed=args.seed + 1))
        if not args.quiet:
            print(f"serving {service.scheme.name} on n={n} "
                  f"m={graph.number_of_edges()} (one JSON request per line; "
                  f"op=shutdown or EOF ends the session)", file=sys.stderr)
        if args.port is not None:
            code = serve_socket(service, host=args.host, port=args.port)
        else:
            code = serve_stdio(service)
    except BaseException:
        run_ui.abort()
        raise
    run_ui.finish()
    return code


def cmd_report(args) -> int:
    """Render a recorded run (``--record-run DIR``) as a human report."""
    try:
        run = obs_events.read_run(args.run)
    except FileNotFoundError:
        raise SystemExit(
            f"error: no run manifest under {args.run!r} "
            f"(expected {obs_events.MANIFEST_FILE}; record one with "
            f"'repro evaluate ... --record-run {args.run}')"
        )
    if args.json:
        print(obs.to_json({
            "manifest": run["manifest"],
            "events": [obs_events.event_to_dict(event)
                       for event in run["events"]],
        }))
        return 0
    print(obs_progress.render_run_report(run["manifest"], run["events"]))
    return 0


def cmd_scale(args) -> int:
    algebra, is_bgp = _policy(args.policy)
    sizes = _parse_sizes(args.sizes, minimum=3)
    rows = []
    for n in sizes:
        graph = _topology(algebra, is_bgp, args.topology, n, args.seed + n)
        scheme = build_scheme(graph, algebra, rng=random.Random(args.seed + n + 1))
        bits = memory_report(scheme).max_bits
        rows.append((graph.number_of_nodes(), bits))
        print(f"n={graph.number_of_nodes():5d}  max table bits={bits}")
    ns, bits = zip(*rows)
    print(fit_scaling(ns, bits).summary())
    return 0


def _golden_cases(args):
    from repro.regress import GOLDEN_CASES, case_by_name

    if not args.case:
        return list(GOLDEN_CASES)
    try:
        return [case_by_name(name) for name in args.case]
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}")


def cmd_golden_record(args) -> int:
    from repro.regress import record_all

    paths = record_all(args.dir, cases=_golden_cases(args))
    for name, path in paths.items():
        with open(path) as handle:
            traces = sum(1 for line in handle) - 1  # minus the meta line
        print(f"recorded {name}: {traces} traces -> {path}")
    return 0


def cmd_golden_check(args) -> int:
    from repro.regress import check_all

    results = check_all(args.dir, cases=_golden_cases(args))
    failed = [result for result in results if not result.ok]
    for result in results:
        print(f"{result.case}: {result.status.upper()}"
              + (f" — {result.detail}" if result.ok else ""))
    for result in failed:
        print()
        print(result.detail)
    if failed:
        print(f"\ngolden check FAILED for {len(failed)}/{len(results)} case(s)")
        return 1
    print(f"golden check passed: {len(results)} case(s)")
    return 0


def cmd_table1(args) -> int:
    from repro.core.table1 import format_table1, reproduce_table1

    sizes = _parse_sizes(args.sizes, minimum=1)
    rows = reproduce_table1(sizes=sizes, seed=args.seed)
    print(format_table1(rows))
    return 0


def _add_telemetry_options(parser: argparse.ArgumentParser, *,
                           trace_default: Optional[int] = None,
                           json_flag: bool = False) -> None:
    """Shared telemetry/output flags — the one place their contract lives.

    Every subcommand that goes through here gets ``--progress``,
    ``--quiet`` and ``--record-run DIR`` with identical semantics.  The
    precedence rule (implemented once, in
    :func:`repro.obs.progress.should_show_progress`): the
    ``REPRO_NO_PROGRESS`` environment variable and ``--quiet`` always
    win; ``--json`` implies quiet; an explicit ``--progress`` then forces
    the live line; otherwise progress renders only on a TTY.
    ``--record-run`` is independent of all of the above — it switches the
    run-event stream on and writes a durable manifest + event log whether
    or not anything rendered live.

    ``--trace``/``--trace-limit`` appear on commands that can print
    hop-by-hop packet traces (*trace_default* is the per-command capture
    limit); ``--json`` via *json_flag* on commands with a distinct
    machine-readable mode (commands whose output is always JSON, like
    ``profile`` and ``serve``, omit it).  On commands that run no
    experiment (``report``) the progress/record flags are accepted for
    interface uniformity and are inert.
    """
    parser.add_argument("--progress", action="store_true",
                        help="force the live progress line even without a TTY")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the live progress line")
    parser.add_argument("--record-run", metavar="DIR", default=None,
                        help="write a run manifest + event log to DIR")
    if trace_default is not None:
        parser.add_argument("--trace", action="store_true",
                            help="print the hop-by-hop packet event log")
        parser.add_argument("--trace-limit", type=int, default=trace_default,
                            help="max packet traces to capture "
                                 f"(default {trace_default})")
    if json_flag:
        parser.add_argument("--json", action="store_true",
                            help="emit the report as JSON instead of text")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Compact policy routing — paper reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("policies", help="list catalog policies").set_defaults(
        func=cmd_policies
    )

    p_classify = sub.add_parser("classify", help="classify a policy")
    p_classify.add_argument("policy")
    p_classify.add_argument("--measure", action="store_true",
                            help="also measure the profile empirically")
    p_classify.add_argument("--seed", type=int, default=0)
    p_classify.set_defaults(func=cmd_classify)

    p_route = sub.add_parser("route", help="build a scheme and route all pairs")
    p_route.add_argument("policy")
    p_route.add_argument("--n", type=int, default=48)
    p_route.add_argument("--topology", default="erdos-renyi")
    p_route.add_argument("--compact", action="store_true",
                         help="use the Theorem 3 compact scheme where possible")
    p_route.add_argument("--seed", type=int, default=0)
    _add_telemetry_options(p_route, trace_default=8, json_flag=True)
    p_route.set_defaults(func=cmd_route)

    p_evaluate = sub.add_parser(
        "evaluate",
        help="build + evaluate one experiment (the run_experiment facade)",
    )
    p_evaluate.add_argument("policy")
    p_evaluate.add_argument("--n", type=int, default=48)
    p_evaluate.add_argument("--topology", default="erdos-renyi")
    p_evaluate.add_argument("--compact", action="store_true",
                            help="use the Theorem 3 compact scheme where possible")
    p_evaluate.add_argument("--pairs", type=int, default=None,
                            help="sample this many ordered pairs (default: all)")
    p_evaluate.add_argument("--workers", type=int, default=None,
                            help="evaluate pair shards across N processes")
    p_evaluate.add_argument("--shard-size", type=int, default=None,
                            help="pairs per shard (default: balanced)")
    p_evaluate.add_argument("--seed", type=int, default=0)
    _add_telemetry_options(p_evaluate, trace_default=16, json_flag=True)
    p_evaluate.set_defaults(func=cmd_evaluate)

    p_profile = sub.add_parser(
        "profile",
        help="run the pipeline with telemetry on; dump timings/metrics JSON",
    )
    p_profile.add_argument("policy")
    p_profile.add_argument("--n", type=int, default=48)
    p_profile.add_argument("--topology", default="erdos-renyi")
    p_profile.add_argument("--compact", action="store_true")
    p_profile.add_argument("--workers", type=int, default=None,
                           help="evaluate pair shards across N processes")
    p_profile.add_argument("--trace-limit", type=int, default=4)
    p_profile.add_argument("--output", default=None,
                           help="write the JSON document here instead of stdout")
    p_profile.add_argument("--seed", type=int, default=0)
    _add_telemetry_options(p_profile)
    p_profile.set_defaults(func=cmd_profile)

    p_serve = sub.add_parser(
        "serve",
        help="persistent routing service (JSONL over stdin/stdout or TCP)",
    )
    p_serve.add_argument("policy")
    p_serve.add_argument("--n", type=int, default=48)
    p_serve.add_argument("--topology", default="erdos-renyi")
    p_serve.add_argument("--compact", action="store_true",
                         help="use the Theorem 3 compact scheme where possible")
    p_serve.add_argument("--port", type=int, default=None,
                         help="serve over TCP on this port (0 picks a free "
                              "one) instead of stdin/stdout")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address for --port (default 127.0.0.1)")
    p_serve.add_argument("--seed", type=int, default=0)
    _add_telemetry_options(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_report = sub.add_parser(
        "report",
        help="render a recorded run directory (manifest + event log)",
    )
    p_report.add_argument("run", help="run directory written by --record-run")
    _add_telemetry_options(p_report, json_flag=True)
    p_report.set_defaults(func=cmd_report)

    p_scale = sub.add_parser("scale", help="fit the memory scaling class")
    p_scale.add_argument("policy")
    p_scale.add_argument("--sizes", default="32,64,128")
    p_scale.add_argument("--topology", default="erdos-renyi")
    p_scale.add_argument("--seed", type=int, default=0)
    p_scale.set_defaults(func=cmd_scale)

    p_table1 = sub.add_parser("table1", help="reproduce the paper's Table 1")
    p_table1.add_argument("--sizes", default="32,64,128")
    p_table1.add_argument("--seed", type=int, default=0)
    p_table1.set_defaults(func=cmd_table1)

    p_golden = sub.add_parser(
        "golden", help="golden packet-trace regression fixtures"
    )
    golden_sub = p_golden.add_subparsers(dest="golden_command", required=True)
    for name, func, help_text in (
        ("record", cmd_golden_record,
         "re-record the golden suite's trace fixtures"),
        ("check", cmd_golden_check,
         "replay the suite and diff hop-for-hop against the fixtures"),
    ):
        p_sub = golden_sub.add_parser(name, help=help_text)
        p_sub.add_argument("--dir", default="tests/golden",
                           help="fixture directory (default: tests/golden)")
        p_sub.add_argument("--case", action="append", default=[],
                           help="restrict to this case (repeatable)")
        p_sub.set_defaults(func=func)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # Malformed numeric arguments and the like: a clean error beats a
        # traceback for every subcommand.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # `repro report run/ | head` closes stdout early; exit quietly the
        # way coreutils do instead of dumping a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
