"""The ``repro serve`` wire protocol: JSON requests in, JSON responses out.

One JSON object per line in each direction.  Requests carry an ``op``,
an optional client-chosen ``id`` (echoed back verbatim), and per-op
arguments; node and weight values travel through the lossless typed codec
of :mod:`repro.obs.export` (``encode_value``/``decode_value``), so
tuples, Fractions and ``phi`` survive the JSON round trip exactly.

Ops::

    {"op": "route",   "pairs": [[s, t], ...]}   -> {"result": {"answers": [...]}}
    {"op": "stretch", "pairs": [[s, t], ...]}   -> {"result": {"stretch": [...]}}
    {"op": "memory"}                            -> {"result": {...bits...}}
    {"op": "stats"}                             -> {"result": {...counters...}}
    {"op": "update_weight", "u": ., "v": ., "weight": .} -> {"result": {...}}
    {"op": "fail_link",     "u": ., "v": .}              -> {"result": {...}}
    {"op": "restore_link",  "u": ., "v": .[, "weight": .]} -> {"result": {...}}
    {"op": "shutdown"}                          -> {"result": {"stopping": true}}

Responses are ``{"id": ..., "ok": true, "op": ..., "result": ...}`` or
``{"id": ..., "ok": false, "op": ..., "error": "..."}`` — a bad request
never kills the session.  Response JSON is emitted with sorted keys and
no wall-clock content, so a scripted session diffs cleanly against a
recorded fixture (the CI smoke test does exactly that).
"""

from __future__ import annotations

import json
from typing import Optional, Tuple

from repro.exceptions import ReproError
from repro.obs.export import decode_value, encode_value
from repro.service.service import RouteAnswer, RoutingService, UpdateResult

#: Ops a request may carry (anything else is an error response).
OPS = frozenset((
    "route", "stretch", "memory", "stats",
    "update_weight", "fail_link", "restore_link", "shutdown",
))


class WireError(ReproError):
    """A request line is malformed (bad JSON, unknown op, missing args)."""


def decode_request(line: str) -> dict:
    """Parse one request line into a dict, validating shape and op."""
    try:
        request = json.loads(line)
    except ValueError as exc:
        raise WireError(f"bad JSON: {exc}") from None
    if not isinstance(request, dict):
        raise WireError("request must be a JSON object")
    op = request.get("op")
    if op not in OPS:
        raise WireError(
            f"unknown op {op!r}; expected one of {', '.join(sorted(OPS))}")
    return request


def encode_response(response: dict) -> str:
    """One deterministic JSON line (sorted keys, compact separators)."""
    return json.dumps(response, sort_keys=True, separators=(",", ":"))


def _decode_pairs(request: dict) -> list:
    pairs = request.get("pairs")
    if not isinstance(pairs, list):
        raise WireError("route/stretch needs a 'pairs' list")
    decoded = []
    for pair in pairs:
        if not isinstance(pair, list) or len(pair) != 2:
            raise WireError(f"each pair must be a [source, target] list, "
                            f"got {pair!r}")
        decoded.append((decode_value(pair[0]), decode_value(pair[1])))
    return decoded


def _endpoint_args(request: dict) -> Tuple:
    if "u" not in request or "v" not in request:
        raise WireError(f"{request['op']} needs 'u' and 'v'")
    return decode_value(request["u"]), decode_value(request["v"])


def answer_to_dict(answer: RouteAnswer) -> dict:
    """Wire form of one :class:`RouteAnswer` (typed-codec values)."""
    return {
        "source": encode_value(answer.source),
        "target": encode_value(answer.target),
        "routable": answer.routable,
        "delivered": answer.delivered,
        "path": [encode_value(node) for node in answer.path],
        "hops": answer.hops,
        "preferred": encode_value(answer.preferred),
        "realized": encode_value(answer.realized),
        "optimal": answer.optimal,
        "stretch": answer.stretch,
        "reason": answer.reason,
    }


def update_to_dict(update: UpdateResult) -> dict:
    """Wire form of one :class:`UpdateResult`."""
    return {
        "op": update.op,
        "u": encode_value(update.u),
        "v": encode_value(update.v),
        "weight": encode_value(update.weight),
        "trees_kept": update.trees_kept,
        "trees_dropped": update.trees_dropped,
        "compiled_patched": update.compiled_patched,
        "scheme_rebuild": update.scheme_rebuild,
    }


def handle_request(service: RoutingService,
                   request: dict) -> Tuple[dict, bool]:
    """Execute one decoded request; returns ``(response, shutdown)``."""
    op = request["op"]
    response = {"id": request.get("id"), "op": op, "ok": True}
    shutdown = False
    try:
        if op == "route":
            answers = service.route(_decode_pairs(request))
            response["result"] = {
                "answers": [answer_to_dict(a) for a in answers]}
        elif op == "stretch":
            response["result"] = {
                "stretch": service.stretch(_decode_pairs(request))}
        elif op == "memory":
            memory = service.memory()
            response["result"] = {
                "scheme": memory.scheme_name,
                "n": memory.n,
                "max_bits": memory.max_bits,
                "avg_bits": memory.avg_bits,
                "total_bits": memory.total_bits,
                "max_label_bits": memory.max_label_bits,
            }
        elif op == "stats":
            response["result"] = service.stats()
        elif op == "update_weight":
            u, v = _endpoint_args(request)
            if "weight" not in request:
                raise WireError("update_weight needs 'weight'")
            weight = decode_value(request["weight"])
            response["result"] = update_to_dict(
                service.update_weight(u, v, weight))
        elif op == "fail_link":
            u, v = _endpoint_args(request)
            response["result"] = update_to_dict(service.fail_link(u, v))
        elif op == "restore_link":
            u, v = _endpoint_args(request)
            weight = (decode_value(request["weight"])
                      if "weight" in request else None)
            response["result"] = update_to_dict(
                service.restore_link(u, v, weight=weight))
        else:  # shutdown
            response["result"] = {"stopping": True}
            shutdown = True
    except ReproError as exc:
        response = {"id": request.get("id"), "op": op, "ok": False,
                    "error": str(exc)}
    return response, shutdown


def handle_line(service: RoutingService,
                line: str) -> Tuple[Optional[dict], bool]:
    """Decode + execute one raw line (blank lines are skipped).

    Malformed lines produce an error response instead of raising, so one
    bad client line never tears down the session.
    """
    if not line.strip():
        return None, False
    try:
        request = decode_request(line)
    except WireError as exc:
        return {"id": None, "op": None, "ok": False, "error": str(exc)}, False
    return handle_request(service, request)
