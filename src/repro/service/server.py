"""Transports for :class:`~repro.service.service.RoutingService`.

Two transports share one line loop (:func:`serve_lines`):

* :func:`serve_stdio` — the ``repro serve`` default: requests on stdin,
  responses on stdout, one JSON object per line, EOF or a ``shutdown``
  op ends the session.  Composes with shell pipelines and the CI smoke
  fixture (``printf '...' | repro serve ... | diff - expected``).
* :func:`serve_socket` — the same protocol over TCP, one client at a
  time (connections are served sequentially; the service itself is
  thread-safe, the sequential accept loop just keeps the transport
  dependency-free).  A ``shutdown`` op ends the whole server, not just
  the connection.  A client that disconnects abruptly mid-session only
  ends its own connection: the transport error is logged on the
  announce stream and the accept loop keeps serving.
"""

from __future__ import annotations

import socket
import sys
from typing import IO, Iterable, Optional

from repro.service.service import RoutingService
from repro.service.wire import encode_response, handle_line


def serve_lines(service: RoutingService, lines: Iterable[str],
                out: IO[str]) -> bool:
    """Run the request/response loop over an iterable of raw lines.

    Writes one response line per request line (blank input lines are
    skipped), flushing after each so a pipe peer can interleave requests
    with responses.  Returns True when a ``shutdown`` op ended the loop,
    False on input exhaustion.
    """
    for line in lines:
        response, shutdown = handle_line(service, line)
        if response is not None:
            out.write(encode_response(response) + "\n")
            out.flush()
        if shutdown:
            return True
    return False


def serve_stdio(service: RoutingService,
                stdin: Optional[IO[str]] = None,
                stdout: Optional[IO[str]] = None) -> int:
    """Serve over stdin/stdout until EOF or shutdown; returns exit code 0."""
    serve_lines(service,
                stdin if stdin is not None else sys.stdin,
                stdout if stdout is not None else sys.stdout)
    return 0


def serve_socket(service: RoutingService, host: str = "127.0.0.1",
                 port: int = 0,
                 ready: Optional[IO[str]] = None) -> int:
    """Serve the line protocol over TCP until a ``shutdown`` op arrives.

    Binds ``host:port`` (port 0 picks a free port), announces
    ``listening on HOST:PORT`` on *ready* (default stderr) so scripts can
    discover the bound port, then accepts one connection at a time.

    Transport errors from one connection — a client that vanishes
    mid-request, a reset pipe on write — must not kill the server: the
    "errors never kill the session" contract extends to the accept
    loop.  Each is logged as one ``client disconnected`` line on the
    announce stream and the loop moves on to the next ``accept``.
    """
    with socket.create_server((host, port)) as server:
        bound_host, bound_port = server.getsockname()[:2]
        announce = ready if ready is not None else sys.stderr
        announce.write(f"listening on {bound_host}:{bound_port}\n")
        announce.flush()
        while True:
            conn, peer = server.accept()
            try:
                with conn, conn.makefile("r", encoding="utf-8") as reader, \
                        conn.makefile("w", encoding="utf-8") as writer:
                    if serve_lines(service, reader, writer):
                        return 0
            except (BrokenPipeError, ConnectionResetError, OSError) as exc:
                # Peer formatting is best-effort: accept() may hand back
                # an empty tuple for an already-dead connection.
                peer_repr = ":".join(str(part) for part in peer[:2]) or "?"
                announce.write(
                    f"client disconnected ({peer_repr}): {exc!r}\n")
                announce.flush()
