"""The persistent :class:`RoutingService`: warm state, incremental updates.

A service owns one graph + algebra instance and keeps three pieces of
state warm across queries:

* the **scheme** (whatever :func:`repro.core.compiler.build_scheme`
  prescribes), rebuilt lazily — and deterministically, from the service's
  seed — after any mutation dirties it;
* a private lazy :class:`~repro.core.simulate.PreferredWeightOracle`
  whose per-source trees accumulate across queries and survive mutations
  that provably cannot affect them (surgical invalidation);
* the oracle's :class:`~repro.paths.kernel.CompiledGraph`, weight-patched
  in place when a mutation allows it.

Mutations never rebuild anything eagerly: they invalidate, and the next
query pays exactly for what was dropped.  The correctness contract —
enforced by the equivalence suite in ``tests/service/`` — is that after
any interleaving of updates and queries, answers are bit-identical to a
cold service constructed from the mutated graph with the same options.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.algebra.base import PHI, RoutingAlgebra, is_phi
from repro.exceptions import GraphError, ReproError
from repro.graphs.weighting import WEIGHT_ATTR
from repro.obs import events as _events
from repro.obs import tracing as _obs_tracing
from repro.obs.metrics import enabled as _telemetry_enabled
from repro.obs.metrics import metrics as _telemetry
from repro.routing.memory import MemoryReport, memory_report
from repro.routing.model import RoutingScheme
from repro.routing.stretch import minimal_stretch
from repro.core.simulate import OracleInvalidation, PreferredWeightOracle

#: Modes accepted by ServiceOptions (mirrors repro.core.compiler.MODES).
_MODES = ("auto", "exact", "compact")


@dataclass(frozen=True)
class ServiceOptions:
    """Construction-time knobs of a :class:`RoutingService`.

    * ``mode`` — scheme-compiler mode (``auto``/``exact``/``compact``);
    * ``attr`` — edge weight attribute;
    * ``seed`` — int seed for scheme construction (landmark selection).
      Every scheme (re)build derives a fresh ``random.Random(seed)``, so
      a warm service's scheme after any mutation equals a cold service's
      built from the mutated graph with the same seed;
    * ``max_k`` — largest stretch exponent probed per queried pair.

    Frozen, like :class:`~repro.core.simulate.EvaluationOptions`, so one
    options object can be shared between services and threads.
    """

    mode: str = "auto"
    attr: str = WEIGHT_ATTR
    seed: int = 0
    max_k: int = 16

    def __post_init__(self):
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown mode {self.mode!r}; pick one of {', '.join(_MODES)}")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise TypeError(f"seed must be an int, got {self.seed!r}")
        if self.max_k < 1:
            raise ValueError(f"max_k must be >= 1, got {self.max_k}")


@dataclass(frozen=True)
class RouteAnswer:
    """One routed pair: delivery, realized path, optimality and stretch.

    ``routable`` says a traversable preferred path exists (the preferred
    weight is not ``phi``); unroutable pairs short-circuit without
    touching the scheme.  ``stretch`` is the minimal ``k`` with
    ``realized ⪯ preferred^k`` (None when undelivered, unroutable, or
    beyond ``max_k``); ``optimal`` means realized = preferred exactly.
    """

    source: object
    target: object
    routable: bool
    delivered: bool
    path: Tuple
    hops: int
    preferred: object
    realized: object
    optimal: Optional[bool]
    stretch: Optional[int]
    reason: str = ""


@dataclass(frozen=True)
class UpdateResult:
    """The outcome of one mutation: what survived, what was invalidated.

    ``trees_kept``/``trees_dropped`` count the oracle's memoized
    per-source structures; ``compiled_patched`` says the CSR arrays
    absorbed the change in place (weight updates on compiled edges).
    The scheme is always rebuilt lazily on the next query
    (``scheme_rebuild == "deferred"``) — landmark/cluster structure has
    no incremental story, but the rebuild is seeded so it matches a cold
    construction bit for bit.
    """

    op: str
    u: object
    v: object
    weight: object
    trees_kept: int
    trees_dropped: int
    compiled_patched: bool
    scheme_rebuild: str = "deferred"


class RoutingService:
    """A long-lived routing server over one (graph, algebra) instance.

    Thread-safe: queries and updates serialize on one lock (the oracle
    additionally has its own build lock, so sharing its compiled graph
    with spawn shards stays safe).  The graph passed in is **owned** by
    the service — mutate it only through ``update_weight`` /
    ``fail_link`` / ``restore_link``, never directly, or the memoized
    state goes stale.
    """

    def __init__(self, graph, algebra: RoutingAlgebra,
                 options: Optional[ServiceOptions] = None):
        self.options = options or ServiceOptions()
        self.graph = graph
        self.algebra = algebra
        self.attr = self.options.attr
        self._oracle = PreferredWeightOracle(graph, algebra, attr=self.attr)
        self._scheme: Optional[RoutingScheme] = None
        #: (u, v) as failed -> stashed edge data, for restore_link.
        self._failed: Dict[Tuple, Dict] = {}
        self._lock = threading.RLock()
        self.queries = 0
        self.updates = 0
        self.scheme_builds = 0
        self.trees_kept = 0
        self.trees_dropped = 0
        # Build the scheme eagerly: serve startup is the natural place to
        # pay the one-off cost, and the first query stays cheap.
        with self._lock:
            self._ensure_scheme()

    # -- lifecycle ---------------------------------------------------------

    def _ensure_scheme(self) -> RoutingScheme:
        if self._scheme is None:
            from repro.core.compiler import build_scheme

            with _obs_tracing.span("service.build_scheme",
                                   algebra=self.algebra.name):
                self._scheme = build_scheme(
                    self.graph, self.algebra, mode=self.options.mode,
                    attr=self.attr, rng=random.Random(self.options.seed))
            self.scheme_builds += 1
            if _telemetry_enabled():
                _telemetry().counter("service.scheme_builds").inc()
        return self._scheme

    @property
    def scheme(self) -> RoutingScheme:
        """The current scheme (rebuilding it first when dirtied)."""
        with self._lock:
            return self._ensure_scheme()

    # -- queries -----------------------------------------------------------

    def route(self, pairs: Iterable[Tuple]) -> List[RouteAnswer]:
        """Route a batch of ``(source, target)`` pairs through the scheme.

        Per-source oracle trees are bulk-ensured up front, so a batch
        touching ``k`` sources pays at most ``k`` tree builds (zero when
        warm); the loop itself is pure lookup plus hop-by-hop forwarding.
        """
        pairs = list(pairs)
        with self._lock:
            scheme = self._ensure_scheme()
            oracle = self._oracle
            with _obs_tracing.span("service.query", scheme=scheme.name,
                                   pairs=str(len(pairs))):
                oracle.ensure_sources(
                    s for s, t in pairs if s != t and s in self.graph)
                answers = [self._route_one(scheme, oracle, s, t)
                           for s, t in pairs]
            self.queries += len(pairs)
            if _telemetry_enabled():
                _telemetry().counter("service.queries").inc(len(pairs))
            if _events.enabled():
                _events.emit("service_query", pairs=len(pairs),
                             scheme=scheme.name,
                             delivered=sum(a.delivered for a in answers))
        return answers

    def _route_one(self, scheme, oracle, s, t) -> RouteAnswer:
        if s not in self.graph or t not in self.graph:
            return RouteAnswer(source=s, target=t, routable=False,
                               delivered=False, path=(), hops=0,
                               preferred=PHI, realized=None, optimal=None,
                               stretch=None, reason="unknown node")
        if s == t:
            return RouteAnswer(source=s, target=t, routable=True,
                               delivered=True, path=(s,), hops=0,
                               preferred=None, realized=None, optimal=True,
                               stretch=1, reason="")
        preferred = oracle(s, t)
        if is_phi(preferred):
            return RouteAnswer(source=s, target=t, routable=False,
                               delivered=False, path=(), hops=0,
                               preferred=PHI, realized=None, optimal=None,
                               stretch=None, reason="no traversable path")
        try:
            result = scheme.route(s, t)
        except ReproError as exc:
            return RouteAnswer(source=s, target=t, routable=True,
                               delivered=False, path=(), hops=0,
                               preferred=preferred, realized=None,
                               optimal=None, stretch=None, reason=str(exc))
        if not result.delivered:
            return RouteAnswer(source=s, target=t, routable=True,
                               delivered=False, path=tuple(result.path),
                               hops=result.hops, preferred=preferred,
                               realized=None, optimal=None, stretch=None,
                               reason=result.reason)
        realized = scheme.realized_weight(result)
        return RouteAnswer(
            source=s, target=t, routable=True, delivered=True,
            path=tuple(result.path), hops=result.hops, preferred=preferred,
            realized=realized, optimal=self.algebra.eq(realized, preferred),
            stretch=minimal_stretch(self.algebra, preferred, realized,
                                    max_k=self.options.max_k),
            reason="")

    def stretch(self, pairs: Iterable[Tuple]) -> List[Optional[int]]:
        """Per-pair minimal stretch exponents (None = undelivered/unbounded)."""
        return [answer.stretch for answer in self.route(pairs)]

    def memory(self) -> MemoryReport:
        """The current scheme's bit-level memory report."""
        with self._lock:
            return memory_report(self._ensure_scheme())

    def stats(self) -> dict:
        """Service + oracle counters (queries, updates, cache state)."""
        with self._lock:
            out = {
                "scheme": self._scheme.name if self._scheme else None,
                "nodes": self.graph.number_of_nodes(),
                "edges": self.graph.number_of_edges(),
                "queries": self.queries,
                "updates": self.updates,
                "scheme_builds": self.scheme_builds,
                "trees_kept": self.trees_kept,
                "trees_dropped": self.trees_dropped,
                "failed_links": len(self._failed),
                "oracle": self._oracle.stats(),
            }
        return out

    # -- mutations ---------------------------------------------------------

    def update_weight(self, u, v, weight) -> UpdateResult:
        """Replace the weight of existing edge ``(u, v)``."""
        with self._lock:
            if not self.graph.has_edge(u, v):
                raise GraphError(f"no edge {u!r} -> {v!r} to update")
            self.graph[u][v][self.attr] = weight
            invalidation = self._oracle.invalidate_edge(
                u, v, new_weight=weight, change="weight")
            return self._finish_update("update_weight", u, v, weight,
                                       invalidation)

    def fail_link(self, u, v) -> UpdateResult:
        """Remove edge ``(u, v)``, stashing its data for restore_link."""
        with self._lock:
            if not self.graph.has_edge(u, v):
                raise GraphError(f"no edge {u!r} -> {v!r} to fail")
            self._failed[(u, v)] = dict(self.graph[u][v])
            self.graph.remove_edge(u, v)
            invalidation = self._oracle.invalidate_edge(u, v, change="remove")
            return self._finish_update("fail_link", u, v, None, invalidation)

    def restore_link(self, u, v, weight=None) -> UpdateResult:
        """Re-insert a previously failed edge (or a brand-new one).

        With *weight* omitted the stashed attributes of the failed edge
        come back verbatim; a new edge requires an explicit weight.
        """
        with self._lock:
            if self.graph.has_edge(u, v):
                raise GraphError(f"edge {u!r} -> {v!r} already present")
            data = self._pop_failed(u, v)
            if data is None:
                if weight is None:
                    raise GraphError(
                        f"edge {u!r} -> {v!r} was never failed; "
                        f"pass an explicit weight to create it")
                data = {}
            if weight is not None:
                data[self.attr] = weight
            if self.attr not in data:
                raise GraphError(
                    f"stashed edge {u!r} -> {v!r} has no {self.attr!r}")
            self.graph.add_edge(u, v, **data)
            new_weight = data[self.attr]
            invalidation = self._oracle.invalidate_edge(
                u, v, new_weight=new_weight, change="add")
            return self._finish_update("restore_link", u, v, new_weight,
                                       invalidation)

    def _pop_failed(self, u, v) -> Optional[Dict]:
        data = self._failed.pop((u, v), None)
        if data is None and not self.graph.is_directed():
            data = self._failed.pop((v, u), None)
        return data

    def _finish_update(self, op, u, v, weight,
                       invalidation: OracleInvalidation) -> UpdateResult:
        # Landmark/cluster structure has no incremental repair: any edge
        # change may move ball radii or landmark sets, so the scheme is
        # dirtied wholesale and rebuilt (seeded) on the next query.
        self._scheme = None
        self.updates += 1
        self.trees_kept += invalidation.kept
        self.trees_dropped += invalidation.dropped
        if _telemetry_enabled():
            registry = _telemetry()
            registry.counter("service.updates", op=op).inc()
            registry.counter("service.invalidation.kept").inc(
                invalidation.kept)
            registry.counter("service.invalidation.dropped").inc(
                invalidation.dropped)
        if _events.enabled():
            _events.emit("service_update", op=op,
                         kept=invalidation.kept,
                         dropped=invalidation.dropped,
                         patched=invalidation.patched)
        return UpdateResult(op=op, u=u, v=v, weight=weight,
                            trees_kept=invalidation.kept,
                            trees_dropped=invalidation.dropped,
                            compiled_patched=invalidation.patched)
