"""Routing-as-a-service: a long-lived, churn-surviving query layer.

Every batch entry point (``run_experiment``, the CLI subcommands) rebuilds
the scheme, oracle and compiled graph from scratch per call.  This package
is the amortized counterpart: a :class:`RoutingService` builds that state
**once** and answers batched ``route``/``stretch``/``memory`` queries from
the warm structures, while ``update_weight``/``fail_link``/``restore_link``
keep it correct under churn by surgically invalidating only the per-source
trees the change can affect (see
:meth:`repro.core.simulate.PreferredWeightOracle.invalidate_edge`) and
rebuilding the compact scheme lazily on the next query.  Answers are
bit-identical to a cold service constructed from the mutated graph.

The service fronts two transports: the in-process Python API here, and the
``repro serve`` CLI speaking line-delimited JSON over stdin/stdout or a
TCP socket (:mod:`repro.service.server`); the wire codec lives in
:mod:`repro.service.wire`.  See ``docs/SERVICE.md`` for the lifecycle,
invalidation semantics and wire format.
"""

from repro.service.service import (
    RouteAnswer,
    RoutingService,
    ServiceOptions,
    UpdateResult,
)
from repro.service.wire import decode_request, encode_response, handle_request
from repro.service.server import serve_lines, serve_socket, serve_stdio

__all__ = [
    "RouteAnswer",
    "RoutingService",
    "ServiceOptions",
    "UpdateResult",
    "decode_request",
    "encode_response",
    "handle_request",
    "serve_lines",
    "serve_socket",
    "serve_stdio",
]
