"""Routing algebras: the paper's core formalism (Section 2.1).

A routing algebra ``A = (W, phi, ⊕, ⪯)`` is a totally ordered commutative
semigroup over an abstract weight set ``W`` with a compatible infinity
element ``phi`` (written ``PHI`` here).  Edge weights compose along a path
with ``⊕`` and paths are compared with the total order ``⪯``; the preferred
path between two nodes is one of minimum weight under ``⪯``.

Section 5 of the paper weakens the model to *right-associative* semigroups
for BGP-style policies; :class:`RoutingAlgebra` carries an
``is_right_associative`` flag and :meth:`path_weight` folds accordingly.

Weights are plain hashable Python values (ints, Fractions, strings,
tuples); each concrete algebra documents its weight domain.
"""

from __future__ import annotations

import abc
from typing import Any, Iterable, Optional, Sequence

from repro.exceptions import AlgebraError

Weight = Any


class _Infinity:
    """The unique infinity element ``phi``.

    ``phi`` is not a member of any weight set ``W``; it is absorptive
    (``w ⊕ phi = phi``) and maximal (``w ≺ phi`` for every ``w ∈ W``).
    A single shared sentinel is used by every algebra, which makes weights
    of lexicographic products and subalgebras directly comparable.
    """

    _instance: Optional["_Infinity"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "PHI"

    def __reduce__(self):
        return (_Infinity, ())


#: The infinity weight ``phi`` shared by all algebras.
PHI = _Infinity()


def is_phi(weight: Weight) -> bool:
    """Return True iff *weight* is the infinity element ``phi``."""
    return weight is PHI or isinstance(weight, _Infinity)


class RoutingAlgebra(abc.ABC):
    """Abstract routing algebra ``(W, phi, ⊕, ⪯)``.

    Subclasses implement the three finite-weight primitives
    (:meth:`combine_finite`, :meth:`leq_finite`, :meth:`contains`) plus
    :meth:`sample_weights`; the public methods :meth:`combine`, :meth:`leq`
    and friends add the ``phi`` handling mandated by absorptivity and
    maximality, so subclasses never see ``PHI``.

    Note that :meth:`combine_finite` *may return* ``PHI``: non-delimited
    algebras (Section 5) combine finite weights into untraversable paths,
    e.g. ``c ⊕ p = phi`` in the provider-customer algebra B1.
    """

    #: Human-readable name, e.g. ``"shortest-path"``.
    name: str = "routing-algebra"

    #: BGP-style algebras (Section 5) compose from the destination towards
    #: the source; Section 2 algebras are fully associative and commutative.
    is_right_associative: bool = False

    # ------------------------------------------------------------------
    # primitives to be supplied by concrete algebras
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def combine_finite(self, w1: Weight, w2: Weight) -> Weight:
        """Return ``w1 ⊕ w2`` for finite ``w1, w2 ∈ W`` (may return ``PHI``)."""

    @abc.abstractmethod
    def leq_finite(self, w1: Weight, w2: Weight) -> bool:
        """Return True iff ``w1 ⪯ w2`` for finite ``w1, w2 ∈ W``."""

    @abc.abstractmethod
    def contains(self, weight: Weight) -> bool:
        """Return True iff finite *weight* is a member of ``W``."""

    @abc.abstractmethod
    def sample_weights(self, rng, count: int) -> list[Weight]:
        """Return *count* weights drawn from ``W`` using *rng* (random.Random).

        Used for random edge weighting and for empirical property checking.
        """

    def declared_properties(self):
        """The algebra's known :class:`~repro.algebra.properties.PropertyProfile`.

        Concrete algebras override this with the flags proved in the paper
        (Table 1); the default declares nothing, letting callers fall back
        to empirical checking.
        """
        from repro.algebra.properties import PropertyProfile

        return PropertyProfile()

    def canonical_weights(self) -> Optional[Sequence[Weight]]:
        """The full weight set if ``W`` is small and finite, else None.

        Finite algebras (usable-path, BGP) return their whole domain so the
        property checkers can verify axioms exhaustively instead of by
        sampling.
        """
        return None

    # ------------------------------------------------------------------
    # public operations (PHI-aware)
    # ------------------------------------------------------------------

    def combine(self, w1: Weight, w2: Weight) -> Weight:
        """Return ``w1 ⊕ w2`` with absorptive ``phi``."""
        if is_phi(w1) or is_phi(w2):
            return PHI
        return self.combine_finite(w1, w2)

    def leq(self, w1: Weight, w2: Weight) -> bool:
        """Return True iff ``w1 ⪯ w2`` (``phi`` is the unique maximum)."""
        if is_phi(w1):
            return is_phi(w2)
        if is_phi(w2):
            return True
        return self.leq_finite(w1, w2)

    def lt(self, w1: Weight, w2: Weight) -> bool:
        """Return True iff ``w1 ≺ w2`` (strictly preferred)."""
        return self.leq(w1, w2) and not self.leq(w2, w1)

    def eq(self, w1: Weight, w2: Weight) -> bool:
        """Return True iff ``w1`` and ``w2`` are equal under the order.

        By anti-symmetry of the total order this coincides with equality of
        weights inside ``W``; it also treats ``PHI == PHI``.
        """
        return self.leq(w1, w2) and self.leq(w2, w1)

    def min_weight(self, weights: Iterable[Weight]) -> Weight:
        """Return the ⪯-least element of *weights* (``PHI`` if empty)."""
        best = PHI
        for w in weights:
            if self.lt(w, best):
                best = w
        return best

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    def combine_sequence(self, weights: Sequence[Weight]) -> Weight:
        """Fold a sequence of edge weights into a path weight.

        Fully associative algebras fold left-to-right; right-associative
        algebras (BGP, Section 5) fold from the destination toward the
        source: ``w1 ⊕ (w2 ⊕ (... ⊕ wk))``.  An empty sequence denotes the
        trivial (single-node) path and has no weight; callers must treat it
        specially, since semigroups carry no identity element.
        """
        if not weights:
            raise AlgebraError("cannot combine an empty weight sequence: semigroups have no identity")
        if self.is_right_associative:
            acc = weights[-1]
            for w in reversed(weights[:-1]):
                acc = self.combine(w, acc)
            return acc
        acc = weights[0]
        for w in weights[1:]:
            acc = self.combine(acc, w)
        return acc

    def path_weight(self, graph, path: Sequence, attr: str = "weight") -> Weight:
        """Weight of *path* (a node sequence) in *graph*.

        Works on undirected graphs and digraphs; edge weights are read from
        edge attribute *attr*.  A single-node path raises
        :class:`AlgebraError` (no identity element); a missing edge yields
        ``PHI``.
        """
        if len(path) < 2:
            raise AlgebraError("path weight undefined for paths with fewer than 2 nodes")
        weights = []
        for u, v in zip(path, path[1:]):
            if not graph.has_edge(u, v):
                return PHI
            weights.append(graph[u][v][attr])
        return self.combine_sequence(weights)

    def power(self, weight: Weight, k: int) -> Weight:
        """Return ``weight^k = weight ⊕ ... ⊕ weight`` (k times, Definition 3)."""
        if k < 1:
            raise AlgebraError(f"power requires k >= 1, got {k}")
        if is_phi(weight):
            return PHI
        acc = weight
        for _ in range(k - 1):
            acc = self.combine(acc, weight)
        return acc

    # ------------------------------------------------------------------
    # integer-key capability (bucketed frontiers)
    # ------------------------------------------------------------------

    def integer_key_bound(self, max_hops: int) -> Optional[int]:
        """Exclusive upper bound on integer comparison keys, or None.

        An algebra that can embed its order into small non-negative
        integers declares it here, unlocking the Dial-style bucketed
        frontier in :mod:`repro.paths.kernel`.  Returning a bound ``B``
        promises that :meth:`integer_key_fn` yields a map ``ik`` with,
        for all weights of paths of at most *max_hops* edges:

        * **order embedding** — ``w1 ⪯ w2`` iff ``ik(w1) <= ik(w2)``
          (so algebra-equal weights share a key and vice versa);
        * **range** — ``0 <= ik(w) < B``;
        * **subadditivity** — ``ik(w1 ⊕ w2) <= ik(w1) + ik(w2)`` whenever
          the combination is finite (lets the engine tighten the bucket
          range to ``max_hops * max_edge_key + 1``).

        The default declares nothing (no bucket fast path).
        """
        return None

    def integer_key_fn(self, max_hops: int):
        """The integer key map promised by :meth:`integer_key_bound`.

        Only called when :meth:`integer_key_bound` returned a bound;
        algebras without the capability keep the default, which raises.
        """
        raise AlgebraError(f"{self.name} declares no integer key embedding")

    def integer_key_additive(self, max_hops: int) -> bool:
        """Whether the integer key embedding is *exactly* additive.

        Returning True strengthens the :meth:`integer_key_bound` contract
        from subadditivity to equality, for all weights of paths of at
        most *max_hops* edges:

        * **exact additivity** — ``ik(w1 ⊕ w2) == ik(w1) + ik(w2)``
          (which implies the combination of finite weights is always
          finite: a ``phi`` result would have no key);
        * **invertibility** — :meth:`integer_key_weight_fn` reconstructs
          the unique realized weight from its key, i.e.
          ``decode(ik(w)) == w`` for every such path weight.

        Together these let the vectorized multi-source batch engine
        (:mod:`repro.paths.batch`) run the whole sweep on integer arrays
        and decode the final labels back to weight objects, bit-identical
        to the per-source kernel.  The default declares nothing.
        """
        return False

    def integer_key_weight_fn(self, max_hops: int):
        """The ``key -> weight`` decode promised by :meth:`integer_key_additive`.

        Only called when :meth:`integer_key_additive` returned True;
        algebras without the capability keep the default, which raises.
        """
        raise AlgebraError(f"{self.name} declares no integer key decode")

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def comparison_key(self):
        """A ``key=`` callable sorting values non-decreasingly by ⪯.

        Weight sets carry no native Python ordering, so sorting goes through
        the algebra's comparison via :func:`functools.cmp_to_key`.  The key
        is memoized per instance — hot paths (the generalized-Dijkstra heap,
        protocol preference scans) call this once per comparison site, and
        a key comparison costs at most two ``leq`` evaluations.
        """
        cached = getattr(self, "_comparison_key_cache", None)
        if cached is not None:
            return cached
        import functools

        def cmp(w1, w2):
            if self.leq(w1, w2):
                return 0 if self.leq(w2, w1) else -1
            return 1

        key = functools.cmp_to_key(cmp)
        try:
            self._comparison_key_cache = key
        except AttributeError:  # __slots__ or frozen subclasses: skip caching
            pass
        return key

    def sorted_weights(self, weights: Iterable[Weight]) -> list[Weight]:
        """Return *weights* sorted non-decreasingly by ⪯ (stable)."""
        return sorted(weights, key=self.comparison_key())

    def __getstate__(self):
        # The memoized comparison key closes over self and is not
        # picklable; workers rebuild it lazily on first use.
        state = self.__dict__.copy()
        state.pop("_comparison_key_cache", None)
        return state

    def __repr__(self):
        return f"<{type(self).__name__} {self.name!r}>"
