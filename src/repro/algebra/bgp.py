"""BGP-style inter-domain routing algebras B1-B4 (Section 5).

Inter-domain policies break the Section 2 mold in two ways: the network is
a symmetric digraph with asymmetric arc weights, and composition is only
*right-associative* — BGP is a path-vector protocol, so link properties
compose from the destination toward the source.

Arc labels and their reverse-arc constraints:

* ``c`` — the arc points from a provider *down* to its customer
  (``w(i,j) = c  <=>  w(j,i) = p``);
* ``p`` — the arc points from a customer *up* to its provider;
* ``r`` — a settlement-free peering arc (``r`` in both directions).

The composition tables (Tables 2 and 3 of the paper) encode Gao-Rexford
valley-freedom: ``x ⊕ y`` is the type of a path whose first arc has label
``x`` and whose remaining suffix has type ``y``; forbidden successions
yield ``phi``.  Under Table 3 the traversable label sequences are exactly
``p* (r|ε) c*`` — climb through providers, optionally cross one peering
link, then descend through customers.

The four levels of policy detail:

* **B1** (Table 2): provider-customer only, all traversable paths equal.
* **B2** (Table 3): adds peering, all traversable paths equal.
* **B3**: Table 3 with local preference ``c ≺ r ⪯ p`` (customer routes
  preferred; we instantiate the antisymmetric variant ``c ≺ r ≺ p``).
* **B4** ``= B3 x S``: B3 refined by path length.
"""

from __future__ import annotations

from repro.algebra.base import PHI, RoutingAlgebra
from repro.algebra.catalog import ShortestPath
from repro.algebra.lexicographic import LexicographicProduct
from repro.algebra.properties import PropertyProfile
from repro.exceptions import AlgebraError

#: Arc label constants.
CUSTOMER = "c"
PEER = "r"
PROVIDER = "p"

#: Reverse-direction label of each arc label.
REVERSE_LABEL = {CUSTOMER: PROVIDER, PROVIDER: CUSTOMER, PEER: PEER}

#: Table 2 — weight composition in the provider-customer algebra B1.
_TABLE_B1 = {
    (CUSTOMER, CUSTOMER): CUSTOMER,
    (CUSTOMER, PROVIDER): PHI,
    (PROVIDER, CUSTOMER): PROVIDER,
    (PROVIDER, PROVIDER): PROVIDER,
}

#: Table 3 — weight composition in valley-free routing (B2 and B3).
_TABLE_VALLEY_FREE = {
    (CUSTOMER, CUSTOMER): CUSTOMER,
    (CUSTOMER, PEER): PHI,
    (CUSTOMER, PROVIDER): PHI,
    (PEER, CUSTOMER): PEER,
    (PEER, PEER): PHI,
    (PEER, PROVIDER): PHI,
    (PROVIDER, CUSTOMER): PROVIDER,
    (PROVIDER, PEER): PROVIDER,
    (PROVIDER, PROVIDER): PROVIDER,
}


class BGPAlgebra(RoutingAlgebra):
    """A finite, table-driven, right-associative routing algebra.

    *table* maps ordered label pairs to a label or ``PHI``; *ranks* maps
    each label to its preference rank (lower is preferred; equal ranks mean
    equal preference).
    """

    is_right_associative = True

    def __init__(self, name, labels, table, ranks):
        self.name = name
        self.labels = tuple(labels)
        self.table = dict(table)
        self.ranks = dict(ranks)
        for w1 in self.labels:
            for w2 in self.labels:
                if (w1, w2) not in self.table:
                    raise AlgebraError(f"composition table misses ({w1!r}, {w2!r})")
        for label in self.labels:
            if label not in self.ranks:
                raise AlgebraError(f"preference rank missing for {label!r}")

    def combine_finite(self, w1, w2):
        # Labels outside the algebra's domain (e.g. peer arcs seen by B1)
        # denote arcs the policy cannot use: the composition is phi.
        if w1 not in self.labels or w2 not in self.labels:
            return PHI
        return self.table[(w1, w2)]

    def leq_finite(self, w1, w2):
        return self.ranks[w1] <= self.ranks[w2]

    def contains(self, weight):
        return weight in self.labels

    def combine_sequence(self, weights):
        # An arc labelled outside the algebra's domain is untraversable for
        # this policy; this also covers single-arc paths, which the generic
        # fold returns without ever calling combine.
        from repro.algebra.base import PHI as _PHI, is_phi as _is_phi

        if any(not _is_phi(w) and w not in self.labels for w in weights):
            return _PHI
        return super().combine_sequence(weights)

    def sample_weights(self, rng, count):
        return [rng.choice(self.labels) for _ in range(count)]

    def canonical_weights(self):
        return self.labels

    def declared_properties(self):
        # Shared across B1-B3 and verified exhaustively by the property
        # machinery (the weight sets are finite): monotone, but neither
        # isotone, strictly monotone, selective, condensed nor delimited.
        # Cancellativity differs per preference ranking, so it stays
        # undeclared.
        return PropertyProfile(
            monotone=True,
            isotone=False,
            strictly_monotone=False,
            selective=False,
            condensed=False,
            delimited=False,
        )


def provider_customer_algebra() -> BGPAlgebra:
    """B1: the provider-customer algebra of Table 2.

    Monotone, but neither regular nor delimited (``c ⊕ p = phi``).
    Incompressible in general, with no finite-stretch compact scheme
    (Theorem 5); compressible under assumptions A1 + A2 (Theorem 6).
    """
    return BGPAlgebra(
        "bgp-provider-customer (B1)",
        (CUSTOMER, PROVIDER),
        _TABLE_B1,
        {CUSTOMER: 0, PROVIDER: 0},
    )


def valley_free_algebra() -> BGPAlgebra:
    """B2: valley-free routing with peering, Table 3; all paths equal.

    Compressible under A1 + A2 via the SVFC decomposition (Theorem 7).
    """
    return BGPAlgebra(
        "bgp-valley-free (B2)",
        (CUSTOMER, PEER, PROVIDER),
        _TABLE_VALLEY_FREE,
        {CUSTOMER: 0, PEER: 0, PROVIDER: 0},
    )


def prefer_customer_algebra() -> BGPAlgebra:
    """B3: valley-free routing with local preference ``c ≺ r ⪯ p``.

    The paper allows ``r ⪯ p``; this instantiation uses the standard
    Gao-Rexford strict ordering ``c ≺ r ≺ p``.  Incompressible even under
    A1 + A2, with no finite-stretch scheme (Theorem 8).
    """
    return BGPAlgebra(
        "bgp-prefer-customer (B3)",
        (CUSTOMER, PEER, PROVIDER),
        _TABLE_VALLEY_FREE,
        {CUSTOMER: 0, PEER: 1, PROVIDER: 2},
    )


def bgp_full_algebra(max_weight: int = 16) -> LexicographicProduct:
    """B4 = B3 x S: prefer-customer policy refined by path length.

    Incompressible even under A1 + A2 (Theorem 9).  Arc weights are pairs
    ``(label, cost)``; the ``S`` component sums hop costs, so with unit
    costs the tie-break is plain AS-path length, exactly BGP's behaviour.
    """
    product = LexicographicProduct(
        prefer_customer_algebra(),
        ShortestPath(max_weight),
        name="bgp-prefer-customer-shortest (B4)",
    )
    return product
