"""Subalgebras: restriction of an algebra to a closed weight subset (Section 2.2).

Given ``A = (W, phi, ⊕, ⪯)`` and ``W' ⊆ W`` closed under ``⊕``, the
restriction ``(W', phi, ⊕, ⪯)`` is a subalgebra of ``A``.  Subalgebras
inherit the universally quantified properties of the root algebra
(monotonicity, isotonicity, selectivity, ...) but *new* properties may
emerge on the smaller set — the paper's example being strict monotonicity
of ``(N, inf, +, <=)`` inside the weakly monotone ``(N ∪ {0}, inf, +, <=)``.
Lemma 2 rests on exactly this mechanism: a delimited strictly monotone
*subalgebra* suffices for incompressibility of the whole algebra.
"""

from __future__ import annotations

from repro.algebra.base import RoutingAlgebra, is_phi
from repro.exceptions import AlgebraError


class Subalgebra(RoutingAlgebra):
    """Restriction of *parent* to the finite weight set *weights*.

    Closure of *weights* under the parent's composition is verified
    exhaustively at construction time unless ``check_closure=False`` (use
    that only for infinite ``W'`` described by a membership predicate via
    :class:`PredicateSubalgebra`).
    """

    def __init__(self, parent: RoutingAlgebra, weights, name=None, check_closure=True):
        self.parent = parent
        self._weights = tuple(dict.fromkeys(weights))  # de-dup, keep order
        if not self._weights:
            raise AlgebraError("a subalgebra needs a non-empty weight set")
        self.name = name or f"{parent.name}|{len(self._weights)} weights"
        self.is_right_associative = parent.is_right_associative
        for w in self._weights:
            if not parent.contains(w):
                raise AlgebraError(f"weight {w!r} is not in the parent algebra {parent.name}")
        if check_closure:
            self._verify_closure()

    def _verify_closure(self):
        members = set(self._weights)
        for w1 in self._weights:
            for w2 in self._weights:
                combined = self.parent.combine(w1, w2)
                if is_phi(combined):
                    # Non-delimited parents may map into phi; phi is not a
                    # member of W' but the subalgebra is then simply
                    # non-delimited, which is legal.
                    continue
                if combined not in members:
                    raise AlgebraError(
                        f"weight set not closed: {w1!r} ⊕ {w2!r} = {combined!r} ∉ W'"
                    )

    def combine_finite(self, w1, w2):
        return self.parent.combine_finite(w1, w2)

    def leq_finite(self, w1, w2):
        return self.parent.leq_finite(w1, w2)

    def contains(self, weight):
        return weight in self._weights

    def sample_weights(self, rng, count):
        return [rng.choice(self._weights) for _ in range(count)]

    def canonical_weights(self):
        return self._weights


class PredicateSubalgebra(RoutingAlgebra):
    """Restriction of *parent* to ``{w : predicate(w)}`` with its own sampler.

    For infinite restrictions, e.g. the interior ``(0, 1)`` of the
    most-reliable-path algebra.  Closure cannot be verified exhaustively;
    the ``check_closure`` property checker from
    :mod:`repro.algebra.properties` provides sampled evidence instead.
    """

    def __init__(self, parent: RoutingAlgebra, predicate, sampler, name=None):
        self.parent = parent
        self.predicate = predicate
        self.sampler = sampler
        self.name = name or f"{parent.name}|predicate"
        self.is_right_associative = parent.is_right_associative

    def combine_finite(self, w1, w2):
        return self.parent.combine_finite(w1, w2)

    def leq_finite(self, w1, w2):
        return self.parent.leq_finite(w1, w2)

    def contains(self, weight):
        return self.parent.contains(weight) and self.predicate(weight)

    def sample_weights(self, rng, count):
        return [self.sampler(rng) for _ in range(count)]
