"""Routing algebras: the policy formalism of Sections 2 and 5.

This subpackage provides the abstract algebra model (:mod:`.base`), the
property checkers (:mod:`.properties`), the concrete Table 1 algebras
(:mod:`.catalog`), composition operators (:mod:`.lexicographic`,
:mod:`.subalgebra`), the Lemma 2 power machinery (:mod:`.power`) and the
BGP algebras B1-B4 (:mod:`.bgp`).
"""

from repro.algebra.base import PHI, RoutingAlgebra, Weight, is_phi
from repro.algebra.bgp import (
    CUSTOMER,
    PEER,
    PROVIDER,
    REVERSE_LABEL,
    BGPAlgebra,
    bgp_full_algebra,
    prefer_customer_algebra,
    provider_customer_algebra,
    valley_free_algebra,
)
from repro.algebra.catalog import (
    MinHop,
    MostReliablePath,
    ShortestPath,
    UsablePath,
    WidestPath,
)
from repro.algebra.lexicographic import (
    LexicographicProduct,
    chain_weight,
    flatten_weight,
    lexicographic_chain,
    proposition1_profile,
    shortest_widest_path,
    widest_shortest_path,
)
from repro.algebra.power import (
    CyclicSubsemigroup,
    cyclic_subsemigroup,
    embeds_shortest_path,
    relabel_shortest_path_instance,
)
from repro.algebra.properties import (
    CheckResult,
    PropertyProfile,
    check_axioms,
    empirical_profile,
    verified_profile,
)
from repro.algebra.subalgebra import PredicateSubalgebra, Subalgebra

__all__ = [
    "PHI",
    "RoutingAlgebra",
    "Weight",
    "is_phi",
    "CUSTOMER",
    "PEER",
    "PROVIDER",
    "REVERSE_LABEL",
    "BGPAlgebra",
    "bgp_full_algebra",
    "prefer_customer_algebra",
    "provider_customer_algebra",
    "valley_free_algebra",
    "MinHop",
    "MostReliablePath",
    "ShortestPath",
    "UsablePath",
    "WidestPath",
    "LexicographicProduct",
    "chain_weight",
    "flatten_weight",
    "lexicographic_chain",
    "proposition1_profile",
    "shortest_widest_path",
    "widest_shortest_path",
    "CyclicSubsemigroup",
    "cyclic_subsemigroup",
    "embeds_shortest_path",
    "relabel_shortest_path_instance",
    "CheckResult",
    "PropertyProfile",
    "check_axioms",
    "empirical_profile",
    "verified_profile",
    "PredicateSubalgebra",
    "Subalgebra",
]
