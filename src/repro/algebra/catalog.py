"""The concrete intra-domain routing algebras of Table 1.

=====================  ==============================  ==========
Policy                 Algebra                         Properties
=====================  ==============================  ==========
Shortest path          ``S = (N, inf, +, <=)``         SM, I, D
Widest path            ``W = (N, 0, min, >=)``         S, I, M, D
Most reliable path     ``R = ((0,1], 0, *, >=)``       SM, I, D
Usable path            ``U = ({1}, 0, *, >=)``         S, I, M, D
=====================  ==============================  ==========

The two lexicographic policies of Table 1 (widest-shortest ``WS = S x W``
and shortest-widest ``SW = W x S``) live in
:mod:`repro.algebra.lexicographic`.

``N`` here is the set of *positive* naturals: including 0 in the shortest
path algebra would break strict monotonicity (the paper makes the same
point when discussing subalgebras in Section 2.2).  The most-reliable-path
algebra uses exact :class:`fractions.Fraction` weights so that the
associativity and isotonicity checks are not confounded by floating-point
rounding.
"""

from __future__ import annotations

from fractions import Fraction

from repro.algebra.base import RoutingAlgebra
from repro.algebra.properties import PropertyProfile


class ShortestPath(RoutingAlgebra):
    """``S = (N, inf, +, <=)``: minimize additive path cost.

    Strictly monotone and isotone; incompressible by Proposition 3 (and by
    Theorem 2, since it is delimited and strictly monotone).
    """

    name = "shortest-path"

    def __init__(self, max_weight: int = 100):
        if max_weight < 1:
            raise ValueError("max_weight must be >= 1")
        self.max_weight = max_weight

    def combine_finite(self, w1, w2):
        return w1 + w2

    def leq_finite(self, w1, w2):
        return w1 <= w2

    def contains(self, weight):
        return isinstance(weight, int) and not isinstance(weight, bool) and weight >= 1

    def sample_weights(self, rng, count):
        return [rng.randint(1, self.max_weight) for _ in range(count)]

    def declared_properties(self):
        return PropertyProfile(
            monotone=True,
            isotone=True,
            strictly_monotone=True,
            selective=False,
            cancellative=True,
            condensed=False,
            delimited=True,
        )

    def integer_key_bound(self, max_hops):
        # Additive costs over edges of at most max_weight: a path of up to
        # max_hops edges weighs at most max_hops * max_weight.
        return max_hops * self.max_weight + 1

    def integer_key_fn(self, max_hops):
        return lambda weight: weight

    def integer_key_additive(self, max_hops):
        # Keys ARE the weights and composition is integer addition, so the
        # embedding is exactly additive and trivially invertible.
        return True

    def integer_key_weight_fn(self, max_hops):
        return lambda key: key


class MinHop(ShortestPath):
    """Minimum-hop routing: shortest path with unit edge weights.

    The algebra is the same ``S``; only the sampling differs.  Used by the
    Fig. 2 lower-bound experiments, where preferred paths are min-hop.
    """

    name = "min-hop"

    def __init__(self):
        super().__init__(max_weight=1)

    def sample_weights(self, rng, count):
        return [1] * count


class WidestPath(RoutingAlgebra):
    """``W = (N, 0, min, >=)``: maximize the bottleneck capacity.

    Selective (``min(w1, w2) in {w1, w2}``), monotone and isotone; hence
    compressible with Theta(log n) local memory by Theorem 1.  The paper's
    ``phi = 0`` (zero capacity) maps onto the shared ``PHI`` sentinel.
    """

    name = "widest-path"

    def __init__(self, max_capacity: int = 100):
        if max_capacity < 1:
            raise ValueError("max_capacity must be >= 1")
        self.max_capacity = max_capacity

    def combine_finite(self, w1, w2):
        return min(w1, w2)

    def leq_finite(self, w1, w2):
        # Larger capacity is preferred, so w1 "⪯" w2 iff w1 >= w2.
        return w1 >= w2

    def contains(self, weight):
        return isinstance(weight, int) and not isinstance(weight, bool) and weight >= 1

    def sample_weights(self, rng, count):
        return [rng.randint(1, self.max_capacity) for _ in range(count)]

    def declared_properties(self):
        return PropertyProfile(
            monotone=True,
            isotone=True,
            strictly_monotone=False,
            selective=True,
            cancellative=False,
            condensed=False,
            delimited=True,
        )

    def integer_key_bound(self, max_hops):
        # Bottleneck (min) composition never leaves the edge-weight range
        # [1, max_capacity]; wider is preferred, so invert into [0, C-1].
        return self.max_capacity

    def integer_key_fn(self, max_hops):
        capacity = self.max_capacity
        return lambda weight: capacity - weight


class MostReliablePath(RoutingAlgebra):
    """``R = ((0,1], 0, *, >=)``: maximize the product of edge reliabilities.

    Contains the delimited strictly monotone subalgebra ``((0,1), 0, *, >=)``
    and is therefore incompressible by Lemma 2.  Weights are exact
    :class:`~fractions.Fraction` values in ``(0, 1]``.
    """

    name = "most-reliable-path"

    def __init__(self, denominator: int = 64):
        if denominator < 2:
            raise ValueError("denominator must be >= 2")
        self.denominator = denominator

    def combine_finite(self, w1, w2):
        return w1 * w2

    def leq_finite(self, w1, w2):
        # Higher reliability is preferred.
        return w1 >= w2

    def contains(self, weight):
        return isinstance(weight, Fraction) and Fraction(0) < weight <= Fraction(1)

    def sample_weights(self, rng, count):
        return [
            Fraction(rng.randint(1, self.denominator), self.denominator)
            for _ in range(count)
        ]

    def declared_properties(self):
        # Note: strict monotonicity fails only at the isolated weight 1
        # (1 * w = w); on the open interval (0,1) it holds, which is what
        # Lemma 2 needs.  We declare the conservative flags of the full
        # algebra; `strictly_monotone_interior` below witnesses the rest.
        return PropertyProfile(
            monotone=True,
            isotone=True,
            strictly_monotone=None,
            selective=False,
            cancellative=True,
            condensed=False,
            delimited=True,
        )

    def strictly_monotone_subalgebra(self):
        """The ``((0,1), 0, *, >=)`` subalgebra that drives Lemma 2.

        The open interval is closed under multiplication (``a*b < a`` for
        ``b < 1``) but infinite, so it is expressed as a predicate
        subalgebra with its own sampler.
        """
        from repro.algebra.subalgebra import PredicateSubalgebra

        denominator = self.denominator

        def sampler(rng):
            return Fraction(rng.randint(1, denominator - 1), denominator)

        return PredicateSubalgebra(
            self,
            predicate=lambda w: Fraction(0) < w < Fraction(1),
            sampler=sampler,
            name="most-reliable-interior",
        )


class UsablePath(RoutingAlgebra):
    """``U = ({1}, 0, *, >=)``: every traversable path is equally preferred.

    The policy behind plain reachability (Ethernet spanning-tree style
    forwarding).  Selective and monotone, hence compressible (Theorem 1);
    it also serves as the reduction target in the Theorem 6 proof.
    """

    name = "usable-path"

    def combine_finite(self, w1, w2):
        return 1

    def leq_finite(self, w1, w2):
        return True

    def contains(self, weight):
        return weight == 1 and isinstance(weight, int) and not isinstance(weight, bool)

    def sample_weights(self, rng, count):
        return [1] * count

    def canonical_weights(self):
        return (1,)

    def declared_properties(self):
        # With the singleton weight set {1} every universally quantified
        # property holds trivially, including cancellativity.
        return PropertyProfile(
            monotone=True,
            isotone=True,
            strictly_monotone=False,
            selective=True,
            cancellative=True,
            condensed=True,
            delimited=True,
        )

    def integer_key_bound(self, max_hops):
        # Singleton weight set: every traversable path shares one key.
        return 1

    def integer_key_fn(self, max_hops):
        return lambda weight: 0

    def integer_key_additive(self, max_hops):
        # 0 + 0 == 0 and the one key decodes to the one weight.
        return True

    def integer_key_weight_fn(self, max_hops):
        return lambda key: 1
