"""Lexicographic products of routing algebras (Section 2.2).

Given algebras ``A`` and ``B``, the product ``A x B`` composes weights
componentwise and compares them lexicographically: first by ``A``, ties
broken by ``B``.  Proposition 1 describes how monotonicity, isotonicity and
strict monotonicity transform under the product; :func:`proposition1_profile`
implements those rules, so the derived profile of, e.g., shortest-widest
path falls out mechanically — exactly the way Table 1 derives it.
"""

from __future__ import annotations

from repro.algebra.base import PHI, RoutingAlgebra, is_phi
from repro.algebra.catalog import ShortestPath, WidestPath
from repro.algebra.properties import PropertyProfile


def _and3(*flags):
    """Three-valued AND over Optional[bool] flags."""
    if any(f is False for f in flags):
        return False
    if all(f is True for f in flags):
        return True
    return None


def _or3(*flags):
    """Three-valued OR over Optional[bool] flags."""
    if any(f is True for f in flags):
        return True
    if all(f is False for f in flags):
        return False
    return None


def proposition1_profile(pa: PropertyProfile, pb: PropertyProfile) -> PropertyProfile:
    """Derive the profile of ``A x B`` from the profiles of ``A`` and ``B``.

    Implements Proposition 1:

    * ``M(AxB)  <=> SM(A) or (M(A) and M(B))``
    * ``I(AxB)  <=> I(A) and I(B) and (N(A) or C(B))``
    * ``SM(AxB) <=> SM(A) or (M(A) and SM(B))``

    plus the straightforward componentwise rules for delimitedness,
    cancellativity and condensedness.  Selectivity of a product is not
    determined by the constituents' selectivity, so it is left unknown.
    """
    return PropertyProfile(
        monotone=_or3(pa.strictly_monotone, _and3(pa.monotone, pb.monotone)),
        isotone=_and3(pa.isotone, pb.isotone, _or3(pa.cancellative, pb.condensed)),
        strictly_monotone=_or3(
            pa.strictly_monotone, _and3(pa.monotone, pb.strictly_monotone)
        ),
        selective=None,
        cancellative=_and3(pa.cancellative, pb.cancellative),
        condensed=_and3(pa.condensed, pb.condensed),
        delimited=_and3(pa.delimited, pb.delimited),
    )


class LexicographicProduct(RoutingAlgebra):
    """The lexicographic product ``A x B`` of two routing algebras.

    Weights are pairs ``(a, b)`` with ``a`` in ``W_A`` and ``b`` in ``W_B``.
    Composition is componentwise; if either component composes to ``phi``
    the pair composes to ``PHI`` (for delimited constituents — the case the
    paper calls well-defined — this never happens).
    """

    def __init__(self, first: RoutingAlgebra, second: RoutingAlgebra, name=None):
        self.first = first
        self.second = second
        self.name = name or f"({first.name} x {second.name})"
        self.is_right_associative = (
            first.is_right_associative or second.is_right_associative
        )

    def combine_finite(self, w1, w2):
        a = self.first.combine(w1[0], w2[0])
        b = self.second.combine(w1[1], w2[1])
        if is_phi(a) or is_phi(b):
            return PHI
        return (a, b)

    def leq_finite(self, w1, w2):
        if self.first.eq(w1[0], w2[0]):
            return self.second.leq(w1[1], w2[1])
        return self.first.leq(w1[0], w2[0])

    def contains(self, weight):
        return (
            isinstance(weight, tuple)
            and len(weight) == 2
            and self.first.contains(weight[0])
            and self.second.contains(weight[1])
        )

    def sample_weights(self, rng, count):
        firsts = self.first.sample_weights(rng, count)
        seconds = self.second.sample_weights(rng, count)
        return list(zip(firsts, seconds))

    def canonical_weights(self):
        ca = self.first.canonical_weights()
        cb = self.second.canonical_weights()
        if ca is None or cb is None:
            return None
        return tuple((a, b) for a in ca for b in cb)

    def declared_properties(self):
        return proposition1_profile(
            self.first.declared_properties(), self.second.declared_properties()
        )

    def integer_key_bound(self, max_hops):
        # Flatten the pair order into one integer base-b2: because each
        # component key is an order embedding and ik2 < b2, the flattened
        # key compares exactly as the lexicographic order does, and
        # componentwise subadditivity carries through the flattening.
        b1 = self.first.integer_key_bound(max_hops)
        b2 = self.second.integer_key_bound(max_hops)
        if b1 is None or b2 is None:
            return None
        return b1 * b2

    def integer_key_fn(self, max_hops):
        b2 = self.second.integer_key_bound(max_hops)
        k1 = self.first.integer_key_fn(max_hops)
        k2 = self.second.integer_key_fn(max_hops)
        return lambda weight: k1(weight[0]) * b2 + k2(weight[1])

    def integer_key_additive(self, max_hops):
        # The flattened key is exactly additive iff both component keys
        # are: ik(w ⊕ w') = (k1+k1')*b2 + (k2+k2') = ik(w) + ik(w'),
        # using that second-component path keys stay below b2.
        return (
            self.first.integer_key_bound(max_hops) is not None
            and self.second.integer_key_bound(max_hops) is not None
            and self.first.integer_key_additive(max_hops)
            and self.second.integer_key_additive(max_hops)
        )

    def integer_key_weight_fn(self, max_hops):
        b2 = self.second.integer_key_bound(max_hops)
        d1 = self.first.integer_key_weight_fn(max_hops)
        d2 = self.second.integer_key_weight_fn(max_hops)
        return lambda key: (d1(key // b2), d2(key % b2))


def lexicographic_chain(*algebras: RoutingAlgebra, name=None) -> "LexicographicProduct":
    """Left-folded n-ary lexicographic product ``A1 x A2 x ... x Ak``.

    Weights nest to the left: a 3-way chain over (S, W, R) carries weights
    ``((s, w), r)`` — build them with :func:`chain_weight` and unpack with
    :func:`flatten_weight`.  Proposition 1's property rules compose
    automatically through the nesting, so e.g. a strictly monotone head
    makes the whole chain strictly monotone.
    """
    if len(algebras) < 2:
        raise ValueError("a lexicographic chain needs at least 2 algebras")
    product = algebras[0]
    for nxt in algebras[1:]:
        product = LexicographicProduct(product, nxt)
    if name is not None:
        product.name = name
    return product


def chain_weight(*components):
    """Build the left-nested weight tuple of a :func:`lexicographic_chain`."""
    if len(components) < 2:
        raise ValueError("chain weights need at least 2 components")
    weight = components[0]
    for component in components[1:]:
        weight = (weight, component)
    return weight


def flatten_weight(weight) -> tuple:
    """Unnest a chain weight back into a flat component tuple.

    Inverse of :func:`chain_weight` provided the chain's *component*
    weights are not themselves 2-tuples (use scalar-weighted algebras as
    chain members, or unpack manually otherwise).
    """
    parts = []
    while isinstance(weight, tuple) and len(weight) == 2:
        weight, last = weight
        parts.append(last)
    parts.append(weight)
    return tuple(reversed(parts))


def widest_shortest_path(max_weight: int = 100, max_capacity: int = 100):
    """``WS = S x W``: among shortest paths, prefer the widest (Table 1).

    Strictly monotone and isotone by Proposition 1, hence regular but
    incompressible (Theorem 2); admits a stretch-3 scheme (Theorem 3).
    """
    return LexicographicProduct(
        ShortestPath(max_weight),
        WidestPath(max_capacity),
        name="widest-shortest-path",
    )


def shortest_widest_path(max_weight: int = 100, max_capacity: int = 100):
    """``SW = W x S``: among widest paths, prefer the shortest (Table 1).

    Strictly monotone but *not* isotone; incompressible by Theorem 2 and,
    worse, not compactly routable at any finite stretch (Theorem 4 with the
    Section 4.2 weight construction).
    """
    return LexicographicProduct(
        WidestPath(max_capacity),
        ShortestPath(max_weight),
        name="shortest-widest-path",
    )
