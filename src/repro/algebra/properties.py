"""Algebraic properties of routing algebras (Section 2.1 and Definition 1).

The paper classifies routing policies by a handful of algebraic properties:

* **Monotonicity (M)**: ``w1 ⪯ w2 ⊕ w1`` — prepending can only worsen.
* **Isotonicity (I)**: ``w1 ⪯ w2 ⇒ w3 ⊕ w1 ⪯ w3 ⊕ w2`` — the order is
  compatible with composition.
* **Regular** = monotone + isotone (Definition 1).
* **Delimited (D)**: ``w1 ⊕ w2 ≠ phi`` — finite weights never combine to
  infinity.
* **Strictly monotone (SM)**: ``w1 ≺ w2 ⊕ w1``.
* **Selective (S)**: ``w1 ⊕ w2 ∈ {w1, w2}``.
* **Cancellative (N)**: ``w1 ⊕ w2 = w1 ⊕ w3 ⇒ w2 = w3``.
* **Condensed (C)**: ``w1 ⊕ w2 = w1 ⊕ w3`` for all weights.

Two complementary mechanisms are provided:

1. every concrete algebra *declares* its known properties (a
   :class:`PropertyProfile`), mirroring Table 1 of the paper; and
2. :func:`empirical_profile` / the ``check_*`` functions *verify* properties
   on samples (exhaustively when the weight set is small and finite),
   returning explicit counterexamples on failure — the executable analogue
   of the paper's counterexample-driven arguments (Fig. 1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Sequence

from repro.algebra.base import PHI, RoutingAlgebra, Weight, is_phi

# Triples are enough to exercise every axiom/property below.
_TUPLE_ARITY = 3


@dataclass(frozen=True)
class CheckResult:
    """Outcome of a single property check.

    ``holds`` is True when no counterexample was found on the examined
    sample; ``witness`` carries the offending weights otherwise.  For
    algebras with a finite canonical weight set the check is exhaustive and
    hence a proof; for sampled infinite weight sets it is evidence only.
    """

    property_name: str
    holds: bool
    witness: Optional[tuple] = None
    exhaustive: bool = False

    def __bool__(self):
        return self.holds


@dataclass(frozen=True)
class PropertyProfile:
    """The algebraic property flags of a routing algebra.

    ``None`` means unknown/undeclared.  ``regular`` is derived
    (Definition 1: monotone and isotone).
    """

    monotone: Optional[bool] = None
    isotone: Optional[bool] = None
    strictly_monotone: Optional[bool] = None
    selective: Optional[bool] = None
    cancellative: Optional[bool] = None
    condensed: Optional[bool] = None
    delimited: Optional[bool] = None

    @property
    def regular(self) -> Optional[bool]:
        """Definition 1: regular = monotone + isotone."""
        if self.monotone is None or self.isotone is None:
            if self.monotone is False or self.isotone is False:
                return False
            return None
        return self.monotone and self.isotone

    def merged_with(self, other: "PropertyProfile") -> "PropertyProfile":
        """Fill in this profile's unknown flags from *other*."""
        updates = {}
        for name in (
            "monotone",
            "isotone",
            "strictly_monotone",
            "selective",
            "cancellative",
            "condensed",
            "delimited",
        ):
            if getattr(self, name) is None and getattr(other, name) is not None:
                updates[name] = getattr(other, name)
        return replace(self, **updates) if updates else self

    def summary(self) -> str:
        """Compact property string in the style of Table 1 (e.g. ``"SM, I, D"``)."""
        parts = []
        if self.strictly_monotone:
            parts.append("SM")
        elif self.monotone:
            parts.append("M")
        elif self.monotone is False:
            parts.append("¬M")
        if self.isotone:
            parts.append("I")
        elif self.isotone is False:
            parts.append("¬I")
        if self.selective:
            parts.append("S")
        if self.cancellative:
            parts.append("N")
        if self.condensed:
            parts.append("C")
        if self.delimited:
            parts.append("D")
        elif self.delimited is False:
            parts.append("¬D")
        return ", ".join(parts) if parts else "(unknown)"


def _weight_pool(algebra: RoutingAlgebra, rng, samples: int) -> tuple[list[Weight], bool]:
    """Weights to check against, plus whether the pool is the whole of W."""
    canonical = algebra.canonical_weights()
    if canonical is not None:
        return list(canonical), True
    if rng is None:
        raise ValueError("an rng is required for algebras without canonical_weights()")
    pool = algebra.sample_weights(rng, samples)
    # Weights produced by composition are also members of W (closure) and
    # often expose violations that raw samples miss; fold a few in.
    composed = [
        algebra.combine(a, b)
        for a, b in zip(pool, pool[1:])
        if not is_phi(algebra.combine(a, b))
    ]
    seen = set()
    merged = []
    for w in pool + composed[: max(4, samples // 4)]:
        if w not in seen:
            seen.add(w)
            merged.append(w)
    return merged, False


def _iter_tuples(pool: Sequence[Weight], arity: int, exhaustive: bool, rng, limit: int):
    """Yield weight tuples to test: exhaustive product or random draws."""
    if exhaustive:
        yield from itertools.product(pool, repeat=arity)
    else:
        for _ in range(limit):
            yield tuple(rng.choice(pool) for _ in range(arity))


def _run_check(name, algebra, predicate, arity, rng, samples, limit) -> CheckResult:
    pool, exhaustive = _weight_pool(algebra, rng, samples)
    for combo in _iter_tuples(pool, arity, exhaustive, rng, limit):
        if not predicate(algebra, *combo):
            return CheckResult(name, False, witness=combo, exhaustive=exhaustive)
    return CheckResult(name, True, exhaustive=exhaustive)


# ----------------------------------------------------------------------
# semigroup / order axioms (Section 2.1)
# ----------------------------------------------------------------------


def check_closure(algebra, rng=None, samples=24, limit=400) -> CheckResult:
    """``w1 ⊕ w2 ∈ W`` — or PHI for non-delimited algebras."""

    def pred(a, w1, w2):
        combined = a.combine(w1, w2)
        return is_phi(combined) or a.contains(combined)

    return _run_check("closure", algebra, pred, 2, rng, samples, limit)


def check_associativity(algebra, rng=None, samples=24, limit=400) -> CheckResult:
    """``(w1 ⊕ w2) ⊕ w3 = w1 ⊕ (w2 ⊕ w3)``.

    Right-associative algebras (Section 5) are exempt by construction; the
    check still runs and reports honestly whether full associativity holds.
    """

    def pred(a, w1, w2, w3):
        left = a.combine(a.combine(w1, w2), w3)
        right = a.combine(w1, a.combine(w2, w3))
        return a.eq(left, right)

    return _run_check("associativity", algebra, pred, 3, rng, samples, limit)


def check_commutativity(algebra, rng=None, samples=24, limit=400) -> CheckResult:
    """``w1 ⊕ w2 = w2 ⊕ w1``."""

    def pred(a, w1, w2):
        return a.eq(a.combine(w1, w2), a.combine(w2, w1))

    return _run_check("commutativity", algebra, pred, 2, rng, samples, limit)


def check_total_order(algebra, rng=None, samples=24, limit=400) -> CheckResult:
    """Reflexivity, anti-symmetry, transitivity and totality of ⪯."""

    def pred(a, w1, w2, w3):
        if not a.leq(w1, w1):
            return False  # reflexivity
        if not (a.leq(w1, w2) or a.leq(w2, w1)):
            return False  # totality
        if a.leq(w1, w2) and a.leq(w2, w1) and not a.eq(w1, w2):
            return False  # anti-symmetry
        if a.leq(w1, w2) and a.leq(w2, w3) and not a.leq(w1, w3):
            return False  # transitivity
        return True

    return _run_check("total-order", algebra, pred, 3, rng, samples, limit)


def check_phi_compatibility(algebra, rng=None, samples=24, limit=400) -> CheckResult:
    """Absorptivity (``w ⊕ phi = phi``) and maximality (``w ≺ phi``)."""

    def pred(a, w):
        return (
            is_phi(a.combine(w, PHI))
            and is_phi(a.combine(PHI, w))
            and a.lt(w, PHI)
        )

    return _run_check("phi-compatibility", algebra, pred, 1, rng, samples, limit)


# ----------------------------------------------------------------------
# classification properties (Definition 1 and the D/SM/S/N/C list)
# ----------------------------------------------------------------------


def check_monotone(algebra, rng=None, samples=24, limit=400) -> CheckResult:
    """(M) ``w1 ⪯ w2 ⊕ w1``."""

    def pred(a, w1, w2):
        return a.leq(w1, a.combine(w2, w1))

    return _run_check("monotone", algebra, pred, 2, rng, samples, limit)


def check_isotone(algebra, rng=None, samples=24, limit=400) -> CheckResult:
    """(I) ``w1 ⪯ w2 ⇒ w3 ⊕ w1 ⪯ w3 ⊕ w2`` (and, for right-associative
    algebras, the suffix variant ``w1 ⊕ w3 ⪯ w2 ⊕ w3`` as well)."""

    def pred(a, w1, w2, w3):
        if not a.leq(w1, w2):
            return True
        if not a.leq(a.combine(w3, w1), a.combine(w3, w2)):
            return False
        if a.is_right_associative and not a.leq(a.combine(w1, w3), a.combine(w2, w3)):
            return False
        return True

    return _run_check("isotone", algebra, pred, 3, rng, samples, limit)


def check_strictly_monotone(algebra, rng=None, samples=24, limit=400) -> CheckResult:
    """(SM) ``w1 ≺ w2 ⊕ w1``."""

    def pred(a, w1, w2):
        return a.lt(w1, a.combine(w2, w1))

    return _run_check("strictly-monotone", algebra, pred, 2, rng, samples, limit)


def check_selective(algebra, rng=None, samples=24, limit=400) -> CheckResult:
    """(S) ``w1 ⊕ w2 ∈ {w1, w2}``."""

    def pred(a, w1, w2):
        combined = a.combine(w1, w2)
        return (not is_phi(combined)) and (a.eq(combined, w1) or a.eq(combined, w2))

    return _run_check("selective", algebra, pred, 2, rng, samples, limit)


def check_cancellative(algebra, rng=None, samples=24, limit=400) -> CheckResult:
    """(N) ``w1 ⊕ w2 = w1 ⊕ w3 ⇒ w2 = w3``."""

    def pred(a, w1, w2, w3):
        if a.eq(a.combine(w1, w2), a.combine(w1, w3)):
            return a.eq(w2, w3)
        return True

    return _run_check("cancellative", algebra, pred, 3, rng, samples, limit)


def check_condensed(algebra, rng=None, samples=24, limit=400) -> CheckResult:
    """(C) ``w1 ⊕ w2 = w1 ⊕ w3`` for all weights."""

    def pred(a, w1, w2, w3):
        return a.eq(a.combine(w1, w2), a.combine(w1, w3))

    return _run_check("condensed", algebra, pred, 3, rng, samples, limit)


def check_delimited(algebra, rng=None, samples=24, limit=400) -> CheckResult:
    """(D) ``w1 ⊕ w2 ≠ phi``."""

    def pred(a, w1, w2):
        return not is_phi(a.combine(w1, w2))

    return _run_check("delimited", algebra, pred, 2, rng, samples, limit)


_AXIOM_CHECKS = (
    check_closure,
    check_associativity,
    check_commutativity,
    check_total_order,
    check_phi_compatibility,
)

_PROPERTY_CHECKS = {
    "monotone": check_monotone,
    "isotone": check_isotone,
    "strictly_monotone": check_strictly_monotone,
    "selective": check_selective,
    "cancellative": check_cancellative,
    "condensed": check_condensed,
    "delimited": check_delimited,
}


def check_axioms(algebra, rng=None, samples=24, limit=400) -> list[CheckResult]:
    """Run every semigroup/order axiom check; returns the results.

    Right-associative algebras skip the commutativity/associativity checks,
    since the Section 5 model drops those requirements by design.
    """
    results = []
    for check in _AXIOM_CHECKS:
        if algebra.is_right_associative and check in (check_associativity, check_commutativity):
            continue
        results.append(check(algebra, rng=rng, samples=samples, limit=limit))
    return results


def empirical_profile(algebra, rng=None, samples=24, limit=400) -> PropertyProfile:
    """Measure a :class:`PropertyProfile` by (exhaustive or sampled) checking."""
    flags = {
        name: check(algebra, rng=rng, samples=samples, limit=limit).holds
        for name, check in _PROPERTY_CHECKS.items()
    }
    return PropertyProfile(**flags)


def verified_profile(algebra, rng=None, samples=24, limit=400) -> PropertyProfile:
    """Declared profile of *algebra* cross-checked against measurement.

    Raises ``AssertionError`` when a declared flag contradicts a measured
    counterexample — a measured ``False`` disproves a declared ``True``
    outright, and an exhaustive measured ``True`` disproves a declared
    ``False``.
    """
    declared = algebra.declared_properties()
    for name, check in _PROPERTY_CHECKS.items():
        want = getattr(declared, name)
        if want is None:
            continue
        result = check(algebra, rng=rng, samples=samples, limit=limit)
        if want and not result.holds:
            raise AssertionError(
                f"{algebra.name}: declared {name}=True but found counterexample {result.witness!r}"
            )
        if (not want) and result.holds and result.exhaustive:
            raise AssertionError(
                f"{algebra.name}: declared {name}=False but the property holds exhaustively"
            )
    return declared
