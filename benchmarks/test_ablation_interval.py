"""E20 — ablation: interval routing vs heavy-path routing on trees.

Both implement Theorem 1's tree routing; they sit at opposite corners of
the label/table economy:

* interval routing: 1-id labels, O(deg log n)-bit tables;
* heavy-path (TZ): O(log n)-bit tables, labels up to O(log n log d).

Measured on random trees (bounded degree) and stars (the adversarial
case), both routing optimally.
"""

import random

from conftest import record
from repro.algebra import UsablePath
from repro.graphs import assign_uniform_weight, random_tree, star
from repro.routing import (
    IntervalRoutingScheme,
    TreeRoutingScheme,
    memory_report,
)


def _measure(tree_factory, sizes):
    rows = []
    for n in sizes:
        tree = tree_factory(n)
        assign_uniform_weight(tree, 1)
        interval = IntervalRoutingScheme(tree, UsablePath(), tree=tree,
                                         check_properties=False)
        heavy = TreeRoutingScheme(tree, UsablePath(), tree=tree,
                                  check_properties=False)
        i_mem = memory_report(interval)
        h_mem = memory_report(heavy)
        rows.append((
            n,
            i_mem.max_bits, i_mem.max_label_bits,
            h_mem.max_bits, h_mem.max_label_bits,
        ))
    return rows


def test_interval_vs_heavy_on_random_trees(benchmark):
    sizes = (64, 256, 1024)
    rows = benchmark.pedantic(
        _measure,
        args=(lambda n: random_tree(n, rng=random.Random(n)), sizes),
        rounds=1, iterations=1,
    )
    lines = ["n      interval(table/label)   heavy-path(table/label)"]
    lines += [
        f"{n:<7d}{it:>5d} / {il:<14d}{ht:>5d} / {hl:d}"
        for n, it, il, ht, hl in rows
    ]
    record("ablation_interval_random_trees", lines)
    for n, i_table, i_label, h_table, h_label in rows:
        assert i_label <= h_label          # interval labels never longer
        # random trees have modest degree: both tables stay small
        assert i_table < 40 * (n.bit_length())


def test_interval_vs_heavy_on_stars(benchmark):
    sizes = (64, 256, 1024)
    rows = benchmark.pedantic(_measure, args=(star, sizes), rounds=1, iterations=1)
    lines = ["n      interval(table/label)   heavy-path(table/label)"]
    lines += [
        f"{n:<7d}{it:>7d} / {il:<12d}{ht:>5d} / {hl:d}"
        for n, it, il, ht, hl in rows
    ]
    record("ablation_interval_stars", lines)
    for n, i_table, _, h_table, _ in rows:
        # the star hub: interval tables grow linearly with degree, heavy's
        # stay logarithmic — Theorem 1's O(log n) claim needs the latter
        assert i_table > (n - 1)
        assert h_table < 20 * n.bit_length()
