"""E15 — Lemma 2: cyclic subsemigroup embeddings of shortest-path routing.

For the incompressible Table 1 policies (R, WS) the proof exhibits a
weight ``w`` whose powers form an infinite, order-isomorphic copy of
``(N, inf, +, <=)``; the reduction relabels any shortest-path instance
into the host algebra with identical preferred paths.  The benchmark
verifies the isomorphism and the reduction on random graphs, and confirms
its *absence* for the compressible (selective) policies.
"""

import random
from fractions import Fraction

import pytest

from conftest import record
from repro.algebra import (
    MostReliablePath,
    ShortestPath,
    UsablePath,
    WidestPath,
    cyclic_subsemigroup,
    embeds_shortest_path,
    relabel_shortest_path_instance,
    widest_shortest_path,
)
from repro.graphs import assign_random_weights, erdos_renyi
from repro.paths import preferred_path_tree

EMBEDDING_CASES = [
    (MostReliablePath(), Fraction(1, 2), True),
    (widest_shortest_path(), (2, 5), True),
    (ShortestPath(), 3, True),
    (WidestPath(), 7, False),
    (UsablePath(), 1, False),
]


@pytest.mark.parametrize("algebra,generator,expected", EMBEDDING_CASES,
                         ids=lambda v: v.name if hasattr(v, "name") else str(v))
def test_embedding_presence(benchmark, algebra, generator, expected):
    embeds = benchmark.pedantic(
        embeds_shortest_path, args=(algebra, generator), kwargs={"bound": 24},
        rounds=1, iterations=1,
    )
    sub = cyclic_subsemigroup(algebra, generator, bound=24)
    record(
        f"embedding_{algebra.name}",
        [
            f"generator {generator!r}: cyclic subsemigroup order "
            f"{'>=24 (infinite)' if sub.infinite_up_to_bound else len(sub.elements)}",
            f"order-isomorphic to (N, +, <=): {embeds}",
        ],
    )
    assert embeds == expected


def test_reduction_preserves_preferred_paths(benchmark):
    """The Lemma 2 reduction, end to end on random instances."""

    def run():
        algebra = MostReliablePath()
        mismatches = 0
        checked = 0
        for seed in range(4):
            rng = random.Random(seed)
            graph = erdos_renyi(14, rng=rng)
            assign_random_weights(graph, ShortestPath(max_weight=4), rng=rng)
            relabeled = relabel_shortest_path_instance(graph, algebra, Fraction(1, 2))
            for root in (0, 5):
                s_tree = preferred_path_tree(graph, ShortestPath(), root)
                r_tree = preferred_path_tree(relabeled, algebra, root)
                for target, weight in s_tree.weight.items():
                    checked += 1
                    if r_tree.weight[target] != Fraction(1, 2) ** weight:
                        mismatches += 1
        return checked, mismatches

    checked, mismatches = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "lemma2_reduction",
        [f"checked {checked} (root, target) pairs across 4 random graphs",
         f"weight correspondence w^d mismatches: {mismatches}"],
    )
    assert mismatches == 0
