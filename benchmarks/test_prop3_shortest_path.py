"""E19 — Proposition 3: shortest-path routing itself is incompressible.

The Fraigniaud-Gavoille result the whole paper builds on: *exact* (stretch
< 2... here stretch-1) min-hop routing on the Fig. 2 family must realize
delta^|T| distinct forwarding functions per center.  Contrast with E8: at
stretch 3 the min-hop forcing disappears (detours satisfy the bound), so
plain shortest-path escapes the counting argument through stretch — which
is precisely why compact routing exists (Theorem 3), and why the paper's
Theorem 4 condition (1) is needed to kill stretch for other policies.
"""

from conftest import record
from repro.algebra import MinHop
from repro.graphs import fig2_instance
from repro.lowerbounds import (
    count_distinct_center_maps,
    verify_preferred_paths_forced,
)

P, DELTA, TARGETS = 2, 2, 4


def _run():
    weights = [1] * P
    stretch1 = verify_preferred_paths_forced(
        fig2_instance(P, DELTA, weights), MinHop(), k=1
    )
    stretch3 = verify_preferred_paths_forced(
        fig2_instance(P, DELTA, weights), MinHop(), k=3
    )
    counting = count_distinct_center_maps(P, DELTA, weights, TARGETS)
    return stretch1, stretch3, counting


def test_prop3_exact_min_hop_incompressible(benchmark):
    stretch1, stretch3, counting = benchmark.pedantic(_run, rounds=1, iterations=1)
    record(
        "prop3_min_hop",
        [
            f"stretch-1 forcing: {stretch1.all_forced} "
            f"({stretch1.forced_pairs}/{stretch1.checked_pairs})",
            f"stretch-3 forcing: {stretch3.all_forced} "
            f"({stretch3.forced_pairs}/{stretch3.checked_pairs}) "
            f"— stretch rescues shortest path (Theorem 3)",
            counting.summary(),
        ],
    )
    # exact routing is forced onto the unique min-hop paths ...
    assert stretch1.all_forced
    # ... but stretch-3 routing is not (no condition (1) structure in S)
    assert not stretch3.all_forced
    # and the forced functions realize the full delta^|T| count
    assert all(
        v == DELTA ** TARGETS for v in counting.distinct_maps_per_center.values()
    )
