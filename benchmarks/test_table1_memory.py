"""E1-E6 — Table 1: local memory requirements of the six routing policies.

For each policy, build the best admissible scheme on growing graphs,
measure the worst-case per-node table size in bits, fit the scaling law,
and check it lands in the memory class Table 1 predicts:

=====================  ===========  ==========================
policy                 paper class  expected measurement
=====================  ===========  ==========================
shortest path          Theta(n)     log-log slope ~1
widest path            Theta(log n) near-flat bits
most reliable path     Theta(n)     log-log slope ~1
usable path            Theta(log n) near-flat bits
widest-shortest path   Theta(n)     log-log slope ~1
shortest-widest path   Omega(n)     slope ~2 for the pair table
=====================  ===========  ==========================
"""

import random

import pytest

from conftest import fit_to_dict, record
from repro.algebra import (
    MostReliablePath,
    ShortestPath,
    UsablePath,
    WidestPath,
    shortest_widest_path,
    widest_shortest_path,
)
from repro.core import build_scheme, fit_scaling, is_sublinear, is_superlogarithmic
from repro.graphs import assign_random_weights, erdos_renyi
from repro.routing import memory_report

SIZES = (32, 64, 128, 256, 512)
SIZES_SMALL = (16, 24, 32, 48, 64)  # pair tables are O(n^2): keep n modest


def _measure(algebra, sizes, seed=0):
    rows = []
    for n in sizes:
        rng = random.Random(seed + n)
        graph = erdos_renyi(n, rng=rng)
        assign_random_weights(graph, algebra, rng=rng)
        scheme = build_scheme(graph, algebra, rng=random.Random(seed + n + 1))
        rows.append((n, memory_report(scheme).max_bits))
    return rows


def _report(name, rows, fit):
    lines = [f"policy: {name}"]
    lines += [f"  n={n:4d}  max table bits={bits}" for n, bits in rows]
    lines.append(f"  {fit.summary()}")
    return lines


def _data(name, rows, fit):
    return {
        "policy": name,
        "sizes": [n for n, _ in rows],
        "max_table_bits": [bits for _, bits in rows],
        "fit": fit_to_dict(fit),
    }


@pytest.mark.parametrize(
    "algebra,expect_sublinear",
    [
        (ShortestPath(max_weight=64), False),
        (WidestPath(max_capacity=64), True),
        (MostReliablePath(denominator=64), False),
        (UsablePath(), True),
        (widest_shortest_path(64, 64), False),
    ],
    ids=lambda v: v.name if hasattr(v, "name") else str(v),
)
def test_table1_memory_scaling(benchmark, algebra, expect_sublinear):
    rows = benchmark.pedantic(
        _measure, args=(algebra, SIZES), rounds=1, iterations=1
    )
    ns, bits = zip(*rows)
    fit = fit_scaling(ns, bits)
    record(f"table1_{algebra.name}", _report(algebra.name, rows, fit),
           data=_data(algebra.name, rows, fit))
    if expect_sublinear:
        # Theta(log n): sublinear, in fact near-flat
        assert is_sublinear(ns, bits), fit.summary()
        assert bits[-1] <= bits[0] + 24
    else:
        # Theta(n): clearly super-logarithmic, with slope near 1
        assert is_superlogarithmic(ns, bits), fit.summary()
        assert 0.8 <= fit.loglog_slope <= 1.3, fit.summary()


def test_table1_shortest_widest_pair_tables(benchmark):
    """SW row: the trivial pair-table scheme is ~n^2 per router; the paper's
    Omega(n) lower bound (Theorem 4 witness) lives in E16."""
    algebra = shortest_widest_path(max_weight=64, max_capacity=64)
    rows = benchmark.pedantic(
        _measure, args=(algebra, SIZES_SMALL), rounds=1, iterations=1
    )
    ns, bits = zip(*rows)
    fit = fit_scaling(ns, bits)
    record("table1_shortest-widest-path", _report(algebra.name, rows, fit),
           data=_data(algebra.name, rows, fit))
    assert is_superlogarithmic(ns, bits)
    # the per-node worst case for pair tables sits between n and n^2
    assert fit.loglog_slope > 1.2, fit.summary()
