"""E-BAT — vectorized batch engine: all-pairs wall clock vs the PR 5 kernel.

The batch-engine acceptance experiment.  On the same integer-weight
Erdős–Rényi instance as E-KRN (n = 1024), the full all-pairs sweep —
one preferred-path tree per source — runs through two engines:

* **kernel** — the PR 5 compiled CSR kernel with the Dial bucket
  frontier, one Python sweep per source;
* **batch** — the vectorized multi-source engine
  (:mod:`repro.paths.batch`): sources run in lanes of 128 through
  numpy-level Dial sweeps over the shared int arrays, decoded back to
  weight objects at the end.

Both timings include their own graph compile and plan construction, so
the ratio is end-to-end.  The asserted bar is **>= 5x wall clock** for
the whole all-pairs build; the ratio also lands in the committed
baseline as ``batch_speedup`` so ``compare_baseline.py`` trips when the
vectorized path decays back toward per-source Python speed.  Every tree
must be bit-identical to the kernel's (weights, parents, and dict
insertion order) — speed without exactness would corrupt golden traces.

Skips (not fails) when numpy — the ``repro[fast]`` optional extra — is
not installed.
"""

import random
import time

import pytest

from conftest import record
from repro.algebra import ShortestPath
from repro.graphs import assign_random_weights, erdos_renyi
from repro.graphs.weighting import WEIGHT_ATTR
from repro.paths import batch
from repro.paths.dijkstra import compile_graph
from repro.paths.kernel import kernel_tree

N = 1024
MAX_WEIGHT = 16
REQUIRED_SPEEDUP = 5.0

pytestmark = pytest.mark.skipif(
    not batch.numpy_available(),
    reason="numpy not installed (the repro[fast] optional extra)",
)


def test_batch_all_pairs_speedup():
    algebra = ShortestPath(max_weight=MAX_WEIGHT)
    rng = random.Random(51)
    graph = erdos_renyi(N, rng=rng)
    assign_random_weights(graph, algebra, rng=random.Random(52))
    sources = list(graph.nodes())
    arcs = 2 * graph.number_of_edges()

    start = time.perf_counter()
    kernel_compiled = compile_graph(graph, WEIGHT_ATTR)
    kernel_runs = [kernel_tree(kernel_compiled, algebra, source)
                   for source in sources]
    kernel_s = time.perf_counter() - start

    start = time.perf_counter()
    batch_compiled = compile_graph(graph, WEIGHT_ATTR)
    plan = batch.batch_plan(batch_compiled, algebra)
    assert plan is not None
    batch_runs = batch.batch_trees(batch_compiled, algebra, sources, plan=plan)
    batch_s = time.perf_counter() - start

    # Exactness first: every lane bit-identical to its kernel sweep.
    assert len(batch_runs) == len(kernel_runs) == N
    for kernel_run, batch_run in zip(kernel_runs, batch_runs):
        assert batch_run.weight == kernel_run.weight
        assert batch_run.parent == kernel_run.parent
        assert list(batch_run.weight) == list(kernel_run.weight)
        assert list(batch_run.parent) == list(kernel_run.parent)

    speedup = kernel_s / batch_s if batch_s else float("inf")
    per_source_kernel = kernel_s / N * 1e3
    per_source_batch = batch_s / N * 1e3

    record(
        "batch_kernel",
        [
            f"erdos-renyi n={N} arcs={arcs}: all-pairs preferred-path "
            f"trees, integer weights in [1, {MAX_WEIGHT}]",
            f"kernel (per-source Dial)   {kernel_s:7.2f}s "
            f"({per_source_kernel:6.2f} ms/source)",
            f"batch  (vectorized lanes)  {batch_s:7.2f}s "
            f"({per_source_batch:6.2f} ms/source)",
            f"wall clock: {speedup:.1f}x vs kernel "
            f"(bar: {REQUIRED_SPEEDUP}x)",
            "trees bit-identical across engines (weights, parents, order)",
        ],
        data={
            "n": N,
            "arcs": arcs,
            "tree_builds": N,
            "max_weight": MAX_WEIGHT,
            "kernel_seconds": kernel_s,
            "batch_seconds": batch_s,
            "batch_speedup": speedup,
        },
    )

    assert speedup >= REQUIRED_SPEEDUP, (
        f"batch all-pairs sweep ran {speedup:.1f}x the kernel "
        f"(kernel {kernel_s:.2f}s, batch {batch_s:.2f}s; "
        f"need {REQUIRED_SPEEDUP}x)"
    )
