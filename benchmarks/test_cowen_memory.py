"""E10 — Theorem 3 memory: the compact scheme's sublinear table growth.

Measures the Cowen scheme's worst-case per-node bits against destination
tables over growing n.  The paper's bound is O(n^(2/3)) for Cowen's
landmark selection and ~O(sqrt n) for the Thorup-Zwick-style random
sampling; measured log-log slopes should sit clearly below the table
scheme's slope ~1, and the absolute bits should cross over in the compact
scheme's favor as n grows.
"""

import random

from conftest import fit_to_dict, record
from repro.algebra import ShortestPath
from repro.core import fit_scaling, is_sublinear
from repro.graphs import assign_random_weights, erdos_renyi
from repro.routing import CowenScheme, DestinationTableScheme, memory_report

SIZES = (48, 96, 192, 384, 768)


def _measure():
    algebra = ShortestPath(max_weight=16)
    table_bits, cowen_bits = [], []
    for n in SIZES:
        rng = random.Random(n)
        graph = erdos_renyi(n, rng=rng)
        assign_random_weights(graph, algebra, rng=rng)
        table_bits.append(
            memory_report(DestinationTableScheme(graph, algebra)).max_bits
        )
        scheme = CowenScheme(graph, algebra, strategy="random",
                             rng=random.Random(n + 1))
        cowen_bits.append(memory_report(scheme).max_bits)
    return table_bits, cowen_bits


def test_cowen_memory_sublinear(benchmark):
    table_bits, cowen_bits = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_fit = fit_scaling(SIZES, table_bits)
    cowen_fit = fit_scaling(SIZES, cowen_bits)
    lines = ["n     dest-table bits   cowen bits"]
    lines += [
        f"{n:<6d}{tb:<18d}{cb:d}"
        for n, tb, cb in zip(SIZES, table_bits, cowen_bits)
    ]
    lines.append(f"dest-table: {table_fit.summary()}")
    lines.append(f"cowen:      {cowen_fit.summary()}")
    record("cowen_memory", lines, data={
        "sizes": list(SIZES),
        "dest_table_bits": list(table_bits),
        "cowen_bits": list(cowen_bits),
        "dest_table_fit": fit_to_dict(table_fit),
        "cowen_fit": fit_to_dict(cowen_fit),
    })

    # tables are linear; the compact scheme is clearly sublinear
    assert table_fit.loglog_slope > 0.85
    assert cowen_fit.loglog_slope < table_fit.loglog_slope - 0.2
    assert is_sublinear(SIZES, cowen_bits)
    # crossover: by the largest size the compact scheme stores fewer bits
    assert cowen_bits[-1] < table_bits[-1]
