"""E8 — Fig. 2 / Theorem 4: the information-theoretic lower bound, measured.

Enumerates the Fig. 2 graph family for several (p, delta, |T|) parameter
points, verifies the condition (1) forcing premise on a representative
instance, and counts the distinct forced forwarding functions per center —
which must equal delta^|T| (log2 of which is the paper's Omega(n log delta)
bit bound with |T| = Theta(n) targets).
"""

import math

import pytest

from conftest import record
from repro.algebra import shortest_widest_path
from repro.graphs import fig2_instance
from repro.lowerbounds import (
    count_distinct_center_maps,
    shortest_widest_condition1_weights,
    verify_preferred_paths_forced,
)

#: (p, delta, num_targets) points — kept tiny: the family is exponential.
POINTS = [(2, 2, 3), (2, 2, 4), (2, 3, 2), (3, 2, 2)]
K = 2


def _run_point(p, delta, targets):
    weights = shortest_widest_condition1_weights(p, K)
    forcing = verify_preferred_paths_forced(
        fig2_instance(p, delta, weights), shortest_widest_path(), K
    )
    counting = count_distinct_center_maps(p, delta, weights, targets)
    return forcing, counting


@pytest.mark.parametrize("p,delta,targets", POINTS)
def test_fig2_counting(benchmark, p, delta, targets):
    forcing, counting = benchmark.pedantic(
        _run_point, args=(p, delta, targets), rounds=1, iterations=1
    )
    record(
        f"fig2_p{p}_d{delta}_t{targets}",
        [
            f"forcing premise (all non-preferred paths beyond stretch {K}): "
            f"{forcing.all_forced} ({forcing.forced_pairs}/{forcing.checked_pairs})",
            counting.summary(),
        ],
    )
    assert forcing.all_forced
    # the paper's count: delta^|T| distinct functions per center
    for center, distinct in counting.distinct_maps_per_center.items():
        assert distinct == delta ** targets, (center, distinct)
    assert counting.measured_bits == pytest.approx(targets * math.log2(delta))
