"""E-EVT — run-event stream: disabled-path overhead on the kernel sweep.

The PR 6 acceptance experiment.  The run-event stream (``repro.obs.
events``) instruments the pair-routing hot loop with heartbeats, so its
*disabled* cost has to be provably negligible — the same bar the metrics
registry meets.  This benchmark prices the no-op path directly:

* ``emit()`` with events disabled is timed over a large call batch to get
  a per-call cost (a module-flag test and immediate return);
* a kernel-engine preferred-tree sweep (the ``test_dijkstra_kernel``
  workload, scaled down) gives the per-pair routing work it would dilute
  into.

The asserted quantity is the worst-case overhead percentage: one
iteration of the *shipped* guard pattern (``if events_on: emit(...)``
with the flag down, exactly what ``route_shard`` runs per pair) against
the tree-build work amortized over that source's pairs.  The loop
harness cost is charged to the guard rather than subtracted, and routing
a pair does oracle lookups and table walks on top of the amortized tree
build, so passing here bounds the true overhead from above.  The bar is
<2%.  A bare disabled ``emit()`` call is also timed for the record — it
prices the per-shard bracket events, which are O(shards), not O(pairs).
"""

import random
import time

from conftest import record
from repro.algebra import ShortestPath
from repro.graphs import assign_random_weights, erdos_renyi
from repro.graphs.weighting import WEIGHT_ATTR
from repro.obs import events
from repro.paths.dijkstra import compile_graph, preferred_path_tree

N = 512
SOURCES = 8
MAX_WEIGHT = 16
EMIT_CALLS = 200_000
REPEATS = 3
MAX_OVERHEAD_PCT = 2.0


def _disabled_emit_cost():
    """Best-of-``REPEATS`` per-call seconds for a disabled ``emit()``."""
    assert not events.enabled()
    emit = events.emit
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(EMIT_CALLS):
            emit("shard_heartbeat", pairs_done=0, pairs_total=0)
        best = min(best, time.perf_counter() - start)
    return best / EMIT_CALLS


def _disabled_guard_cost():
    """Per-iteration seconds for the hot-loop guard with events off.

    This is the exact pattern ``route_shard`` runs per routed pair: a
    local-boolean test that short-circuits the heartbeat bookkeeping.
    Loop overhead is deliberately charged to the guard (conservative).
    """
    assert not events.enabled()
    events_on = events.enabled()
    emit = events.emit
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(EMIT_CALLS):
            if events_on:
                emit("shard_heartbeat", pairs_done=0, pairs_total=0)
        best = min(best, time.perf_counter() - start)
    return best / EMIT_CALLS


def _tree_sweep_cost():
    """Best-of-``REPEATS`` per-source seconds for a kernel tree sweep."""
    algebra = ShortestPath(max_weight=MAX_WEIGHT)
    rng = random.Random(61)
    graph = erdos_renyi(N, rng=rng)
    assign_random_weights(graph, algebra, rng=random.Random(62))
    sources = sorted(random.Random(63).sample(sorted(graph.nodes()), SOURCES))
    compiled = compile_graph(graph, WEIGHT_ATTR)
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for source in sources:
            preferred_path_tree(graph, algebra, source, engine="kernel",
                                compiled=compiled)
        best = min(best, time.perf_counter() - start)
    return best / SOURCES


def test_disabled_events_are_free():
    was_enabled = events.enabled()
    events.disable()
    try:
        per_guard = _disabled_guard_cost()
        per_emit = _disabled_emit_cost()
    finally:
        if was_enabled:
            events.enable()
    per_source = _tree_sweep_cost()

    # Worst case: one guarded heartbeat check per routed pair, charged
    # against the tree-build work amortized over the (N - 1) pairs it
    # serves.
    per_pair = per_source / (N - 1)
    overhead_pct = 100.0 * per_guard / per_pair

    record(
        "event_overhead",
        [
            f"disabled hot-loop guard: {per_guard * 1e9:.0f}ns/pair; "
            f"bare disabled emit(): {per_emit * 1e9:.0f}ns/call "
            f"(best of {REPEATS}x{EMIT_CALLS:,})",
            f"kernel tree sweep: {per_source * 1e3:.2f}ms/source at n={N} "
            f"-> {per_pair * 1e6:.2f}us amortized per pair",
            f"worst-case disabled overhead: {overhead_pct:.3f}% per pair "
            f"(bar: <{MAX_OVERHEAD_PCT}%)",
        ],
        data={
            "n": N,
            "sources": SOURCES,
            "emit_calls": EMIT_CALLS,
            "disabled_guard_ns": per_guard * 1e9,
            "disabled_emit_ns": per_emit * 1e9,
            "tree_build_ms_per_source": per_source * 1e3,
            "disabled_overhead_pct": overhead_pct,
        },
    )

    assert overhead_pct < MAX_OVERHEAD_PCT, (
        f"disabled hot-loop guard costs {per_guard * 1e9:.0f}ns against "
        f"{per_pair * 1e6:.2f}us of per-pair work — {overhead_pct:.2f}% "
        f"overhead (bar: {MAX_OVERHEAD_PCT}%)"
    )
