"""E12/E13 — Theorems 6 and 7: B1/B2 become compressible under A1 + A2.

Builds growing provider hierarchies (B1) and multi-cone internets with a
tier-1 peer mesh (B2), runs the compact tree schemes, verifies every
realized path is traversable (hence preferred — all traversable paths are
equally preferred in B1/B2), and checks the per-node memory stays
logarithmic while a plain per-destination BGP RIB would be linear.
"""

import math
import random

from conftest import record
from repro.algebra import provider_customer_algebra, valley_free_algebra
from repro.core import EvaluationOptions, loglog_slope, run_experiment
from repro.graphs import coned_as_topology, provider_tree_topology
from repro.routing import memory_report

B1_SIZES = (32, 96, 288, 864)


def _pairs(graph, n):
    """All pairs for small instances; a 4000-pair sample beyond."""
    from repro.core import sample_pairs

    if n <= 300:
        return None
    return sample_pairs(graph, count=4000, rng=random.Random(n))
B2_SCALES = (2, 6, 18, 54)  # nodes = 3 + 3*(scale + 3*scale)


def _run_b1():
    algebra = provider_customer_algebra()
    rows = []
    for n in B1_SIZES:
        graph = provider_tree_topology(n, rng=random.Random(n), max_providers=3)
        result = run_experiment(
            graph, algebra,
            options=EvaluationOptions(pairs=_pairs(graph, n)))
        rows.append((n, memory_report(result.scheme).max_bits, result.report))
    return rows


def _run_b2():
    algebra = valley_free_algebra()
    rows = []
    for scale in B2_SCALES:
        graph = coned_as_topology(3, scale, 3 * scale, rng=random.Random(scale))
        n = graph.number_of_nodes()
        result = run_experiment(
            graph, algebra,
            options=EvaluationOptions(pairs=_pairs(graph, n)))
        rows.append((n, memory_report(result.scheme).max_bits, result.report))
    return rows


def test_theorem6_b1_compressible(benchmark):
    rows = benchmark.pedantic(_run_b1, rounds=1, iterations=1)
    lines = [
        f"n={n:4d}  max bits={bits:4d}  {report.summary()}"
        for n, bits, report in rows
    ]
    ns = [n for n, _, _ in rows]
    bits = [b for _, b, _ in rows]
    slope = loglog_slope(ns, bits)
    lines.append(f"log-log slope: {slope:.2f} (Theta(log n) predicted)")
    record("theorem6_b1_scheme", lines)
    for n, b, report in rows:
        assert report.all_delivered and report.all_optimal
        assert b <= 14 * math.log2(n)
    assert slope < 0.5


def test_theorem7_b2_compressible(benchmark):
    rows = benchmark.pedantic(_run_b2, rounds=1, iterations=1)
    lines = [
        f"n={n:4d}  max bits={bits:4d}  {report.summary()}"
        for n, bits, report in rows
    ]
    ns = [n for n, _, _ in rows]
    bits = [b for _, b, _ in rows]
    slope = loglog_slope(ns, bits)
    lines.append(f"log-log slope: {slope:.2f} (Theta(log n) predicted)")
    record("theorem7_b2_scheme", lines)
    for n, b, report in rows:
        assert report.all_delivered and report.all_optimal
        assert b <= 14 * math.log2(n)
    assert slope < 0.5
