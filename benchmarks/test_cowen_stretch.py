"""E9 — Theorem 3: the generalized Cowen scheme is stretch-3.

Routes every pair on several topology families under every delimited
regular catalog algebra and reports the stretch distribution.  The theorem
predicts max stretch <= 3 everywhere, degenerating to exactly 1 for the
selective algebras (widest/usable path, where w^k = w).
"""

import random

import pytest

from conftest import record
from repro.algebra import (
    MostReliablePath,
    ShortestPath,
    WidestPath,
    widest_shortest_path,
)
from repro.core import evaluate_scheme
from repro.graphs import (
    assign_random_weights,
    barabasi_albert,
    erdos_renyi,
    fat_tree,
    grid,
    waxman,
)
from repro.routing import CowenScheme

TOPOLOGIES = {
    "erdos-renyi": lambda: erdos_renyi(48, rng=random.Random(1)),
    "barabasi-albert": lambda: barabasi_albert(48, m=2, rng=random.Random(2)),
    "grid": lambda: grid(7, 7),
    "waxman": lambda: waxman(48, rng=random.Random(3)),
    "fat-tree": lambda: fat_tree(4),
}

ALGEBRAS = [
    (ShortestPath(max_weight=16), 3),
    (MostReliablePath(denominator=16), 3),
    (widest_shortest_path(16, 16), 3),
    (WidestPath(max_capacity=16), 1),
]


def _run(algebra, topology_factory):
    graph = topology_factory()
    assign_random_weights(graph, algebra, rng=random.Random(3))
    scheme = CowenScheme(graph, algebra, rng=random.Random(4))
    return evaluate_scheme(graph, algebra, scheme)


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES), ids=str)
@pytest.mark.parametrize("algebra,max_expected", ALGEBRAS,
                         ids=lambda v: v.name if hasattr(v, "name") else str(v))
def test_cowen_stretch3(benchmark, algebra, max_expected, topology):
    report = benchmark.pedantic(
        _run, args=(algebra, TOPOLOGIES[topology]), rounds=1, iterations=1
    )
    record(
        f"cowen_stretch_{algebra.name}_{topology}",
        [
            report.summary(),
            f"stretch distribution: optimal {report.stretch.within_1}, "
            f"<=3 {report.stretch.within_3}, beyond {report.stretch.unbounded}",
        ],
        data={
            "algebra": algebra.name,
            "topology": topology,
            "pairs": report.pairs,
            "delivered": report.delivered,
            "max_stretch": report.stretch.max_stretch,
            "within_1": report.stretch.within_1,
            "within_3": report.stretch.within_3,
            "unbounded": report.stretch.unbounded,
        },
    )
    assert report.all_delivered
    assert report.stretch.stretch3_holds
    assert report.stretch.max_stretch <= max_expected
