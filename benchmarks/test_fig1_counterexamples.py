"""E7 — Fig. 1: the three selectivity-violation counterexamples of Lemma 1.

For each violation mode the preferred paths are verified to be exactly the
paths the proof claims (direct edges, plus two-hop diagonals for 1c), and
the graph is exhaustively shown to admit NO preferred spanning tree.
"""

from conftest import record
from repro.algebra import ShortestPath
from repro.graphs import fig1a, fig1b, fig1c
from repro.paths import maps_to_tree, preferred_by_enumeration


def _analyze():
    algebra = ShortestPath()
    cases = [
        ("fig1a: w ⊕ w ≻ w", fig1a(3), [(1, 2), (2, 3), (1, 3)], []),
        ("fig1b: w1 ≺ w2, w1 ⊕ w2 ≻ w2", fig1b(1, 4),
         [(1, 2), (2, 3), (1, 3)], []),
        ("fig1c: w1 = w2, w1 ⊕ w2 ≻ w2", fig1c(2, 2),
         [(1, 2), (2, 4), (3, 4), (1, 3)], [(1, 4), (2, 3)]),
    ]
    lines = []
    outcomes = []
    for name, graph, direct_pairs, two_hop_pairs in cases:
        direct_ok = all(
            preferred_by_enumeration(graph, algebra, s, t).path == (s, t)
            for s, t in direct_pairs
        )
        two_hop_ok = all(
            len(preferred_by_enumeration(graph, algebra, s, t).path) == 3
            for s, t in two_hop_pairs
        )
        tree_exists = maps_to_tree(graph, algebra)
        lines.append(
            f"{name}: direct-edge preferred paths {direct_ok}, "
            f"two-hop diagonals {two_hop_ok if two_hop_pairs else 'n/a'}, "
            f"preferred spanning tree exists: {tree_exists}"
        )
        outcomes.append((direct_ok, two_hop_ok, tree_exists))
    return lines, outcomes


def test_fig1_counterexamples(benchmark):
    lines, outcomes = benchmark.pedantic(_analyze, rounds=1, iterations=1)
    record("fig1_counterexamples", lines)
    for direct_ok, two_hop_ok, tree_exists in outcomes:
        assert direct_ok
        assert two_hop_ok
        assert not tree_exists  # Lemma 1: no preferred spanning tree
