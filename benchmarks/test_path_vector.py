"""E21 — the path-vector protocol: convergence scaling and divergence.

Not a table in the paper, but its Section 5 foundation: BGP-style
path-vector dynamics.  Measures (a) message/activation counts versus n
for a regular algebra (converging to generalized-Dijkstra routes) and a
BGP algebra, and (b) the BAD GADGET dispute wheel oscillating under the
non-monotone algebra of :mod:`repro.protocols.disputes` — the executable
form of "what if monotonicity fails" (Griffin-Shepherd-Wilfong).
"""

import random

from conftest import record
from repro.algebra import ShortestPath, valley_free_algebra
from repro.graphs import assign_random_weights, coned_as_topology, erdos_renyi
from repro.protocols import DisputeWheelAlgebra, PathVectorSimulation, bad_gadget


def _converge_shortest():
    rows = []
    for n in (16, 32, 64):
        algebra = ShortestPath(max_weight=16)
        graph = erdos_renyi(n, rng=random.Random(n))
        assign_random_weights(graph, algebra, rng=random.Random(n + 1))
        sim = PathVectorSimulation(graph, algebra)
        report = sim.run()
        rows.append((n, graph.number_of_edges(), report))
    return rows


def _converge_bgp():
    rows = []
    for scale in (2, 6, 12):
        graph = coned_as_topology(3, scale, 3 * scale, rng=random.Random(scale))
        sim = PathVectorSimulation(graph, valley_free_algebra())
        report = sim.run()
        rows.append((graph.number_of_nodes(), graph.number_of_edges(), report))
    return rows


def test_path_vector_convergence_shortest_path(benchmark):
    rows = benchmark.pedantic(_converge_shortest, rounds=1, iterations=1)
    lines = [
        f"n={n:3d} m={m:4d}  {report.summary()}"
        for n, m, report in rows
    ]
    record("path_vector_shortest", lines)
    assert all(report.converged for _, _, report in rows)
    # message complexity grows with the network but stays polynomial-small
    assert rows[-1][2].messages < 80 * rows[-1][0] ** 2


def test_path_vector_convergence_bgp(benchmark):
    rows = benchmark.pedantic(_converge_bgp, rounds=1, iterations=1)
    lines = [
        f"n={n:3d} m={m:4d}  {report.summary()}"
        for n, m, report in rows
    ]
    record("path_vector_bgp", lines)
    assert all(report.converged for _, _, report in rows)


def test_bad_gadget_oscillates(benchmark):
    def run():
        sim = PathVectorSimulation(bad_gadget(3), DisputeWheelAlgebra(),
                                   max_activations=30_000)
        return sim.run()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "path_vector_bad_gadget",
        [
            report.summary(),
            "no stable state exists on the odd dispute wheel; the protocol "
            "oscillates until the activation budget cuts it off",
        ],
    )
    assert not report.converged
    assert report.changed_routes > 10_000
