"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table/figure/claim of the paper (see the
per-experiment index in DESIGN.md).  Results are printed AND persisted to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can cite them.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def record(experiment: str, lines):
    """Print a result block and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines)
    banner = f"\n===== {experiment} =====\n{text}\n"
    print(banner)
    with open(os.path.join(RESULTS_DIR, f"{experiment}.txt"), "w") as handle:
        handle.write(text + "\n")
