"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table/figure/claim of the paper (see the
per-experiment index in DESIGN.md).  Results are printed AND persisted
twice under ``benchmarks/results/``:

* ``<experiment>.txt`` — the human-readable block EXPERIMENTS.md cites;
* ``<experiment>.json`` — the machine-readable payload (fitted slopes,
  memory numbers, message counts) for trend tracking.

At session end a consolidated ``summary.json`` is written covering every
experiment recorded in the run, so downstream tooling reads one file.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: experiment name -> JSON payload, accumulated across the session.
_SUMMARY = {}


def fit_to_dict(fit):
    """Flatten a :class:`repro.core.scaling.ScalingFit` for JSON export."""
    return {
        "best_model": fit.best_model,
        "coefficient": fit.coefficient,
        "intercept": fit.intercept,
        "r_squared": fit.r_squared,
        "loglog_slope": fit.loglog_slope,
        "per_model_r2": dict(fit.per_model_r2),
    }


def record(experiment: str, lines, data=None):
    """Print a result block and persist it under benchmarks/results/.

    *lines* feed the legacy ``.txt`` writer; *data* (any JSON-serializable
    structure) additionally lands in ``<experiment>.json`` and in the
    session-wide ``summary.json``.  Experiments recorded without *data*
    still appear in the summary with their text lines.
    """
    from repro.obs.export import write_json

    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines)
    banner = f"\n===== {experiment} =====\n{text}\n"
    print(banner)
    with open(os.path.join(RESULTS_DIR, f"{experiment}.txt"), "w") as handle:
        handle.write(text + "\n")
    payload = {"experiment": experiment, "lines": list(lines)}
    if data is not None:
        payload["data"] = data
    write_json(os.path.join(RESULTS_DIR, f"{experiment}.json"), payload)
    _SUMMARY[experiment] = payload


def pytest_sessionfinish(session, exitstatus):
    """Consolidate everything recorded this run into results/summary.json."""
    if not _SUMMARY:
        return
    from repro.obs.export import write_benchmark_summary

    write_benchmark_summary(RESULTS_DIR, _SUMMARY,
                            extra={"exit_status": int(exitstatus)})
