"""E-PAR — sharded parallel evaluation: exactness and wall-clock speedup.

The PR 2 acceptance experiment: route every ordered pair of a 400-node
Waxman internetwork through the prescribed scheme, serially and with
``workers=4``, and check that (a) the parallel report is bit-identical to
the serial one (contiguous shards + associative merges make the fold
exact) and (b) the parallel pass is at least 2x faster in wall-clock
time.  The speedup bar only binds where it is physically meaningful —
process pools cannot beat serial on a single core, so on machines with
fewer than 4 usable CPUs the run still verifies exactness and records the
measured ratio, annotated with the core count, for trend tracking.
"""

import os
import time

import random

from conftest import record
from repro.algebra import ShortestPath
from repro.core import EvaluationOptions, evaluate_scheme, oracle_cache, sample_pairs
from repro.core.compiler import build_scheme
from repro.graphs import assign_random_weights, waxman

N = 400
WORKERS = 4
REQUIRED_SPEEDUP = 2.0


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_parallel_matches_serial_with_speedup():
    algebra = ShortestPath()
    graph = waxman(N, rng=random.Random(11))
    assign_random_weights(graph, algebra, rng=random.Random(12))
    scheme = build_scheme(graph, algebra)
    pairs = sample_pairs(graph)
    # Pay the oracle build before timing: both passes then measure pure
    # routing, not the shared (cached) all-pairs computation.
    oracle_cache.get(graph, algebra, attr=scheme.attr, scheme_name=scheme.name)

    start = time.perf_counter()
    serial = evaluate_scheme(graph, algebra, scheme)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = evaluate_scheme(
        graph, algebra, scheme, options=EvaluationOptions(workers=WORKERS))
    parallel_s = time.perf_counter() - start

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    cpus = _usable_cpus()
    enforced = cpus >= WORKERS

    record(
        "parallel_speedup",
        [
            f"waxman n={N}: {len(pairs)} ordered pairs, "
            f"{serial.pairs} routable",
            f"serial    {serial_s:8.2f}s",
            f"workers={WORKERS} {parallel_s:8.2f}s  (speedup {speedup:.2f}x, "
            f"{cpus} usable CPUs)",
            f"reports identical: {parallel == serial}",
            f"2x bar enforced: {enforced}",
        ],
        data={
            "n": N,
            "pairs": len(pairs),
            "routable_pairs": serial.pairs,
            "workers": WORKERS,
            "serial_seconds": serial_s,
            "parallel_seconds": parallel_s,
            "speedup": speedup,
            "usable_cpus": cpus,
            "speedup_enforced": enforced,
            "identical": parallel == serial,
            "max_memory_bits": serial.memory.max_bits,
        },
    )

    assert parallel == serial
    assert parallel.stretch == serial.stretch
    assert parallel.memory == serial.memory
    if enforced:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"workers={WORKERS} on {cpus} CPUs only reached "
            f"{speedup:.2f}x (< {REQUIRED_SPEEDUP}x)"
        )
