"""E11/E14 — Theorems 5 and 8: BGP incompressibility, measured.

On the directed Fig. 2 construction: B1's preferred center→target paths
have weight ``c`` while every alternative is untraversable (phi); with the
Theorem 8 peer augmentation A1 is restored, alternatives become ``r`` or
phi, and — since ``c^k = c ≺ r`` — every stretch-k scheme still must route
on the exact customer paths.  The counting argument then yields the same
delta^|T| distinct forwarding functions as E8.
"""

import pytest

from conftest import record
from repro.algebra import (
    CUSTOMER,
    prefer_customer_algebra,
    provider_customer_algebra,
)
from repro.graphs import fig2_bgp_instance, satisfies_a1, satisfies_a2
from repro.lowerbounds import center_forwarding_map, verify_preferred_paths_forced
from repro.graphs.lowerbound import all_words
import itertools


def _count_bgp_family(p, delta, targets, peer_augment):
    """delta^|T|-style counting on the directed (Theorem 5/8) family."""
    seen = set()
    family = 0
    vocabulary = list(all_words(p, delta))
    for assignment in itertools.product(vocabulary, repeat=targets):
        family += 1
        inst = fig2_bgp_instance(p, delta, words=assignment,
                                 peer_augment=peer_augment)
        seen.add(center_forwarding_map(inst, 0))
    return family, len(seen)


def _forcing(algebra, peer_augment, k):
    inst = fig2_bgp_instance(2, 3, peer_augment=peer_augment)
    return inst, verify_preferred_paths_forced(inst, algebra, k)


def test_theorem5_b1_forcing(benchmark):
    inst, result = benchmark.pedantic(
        _forcing, args=(provider_customer_algebra(), False, 8),
        rounds=1, iterations=1,
    )
    record(
        "theorem5_b1",
        [
            f"instance: {inst.n} nodes, A2={satisfies_a2(inst.graph)}",
            f"preferred paths forced at stretch 8: {result.all_forced} "
            f"({result.forced_pairs}/{result.checked_pairs})",
        ],
    )
    assert result.all_forced


def test_theorem8_b3_forcing_under_a1(benchmark):
    inst, result = benchmark.pedantic(
        _forcing, args=(prefer_customer_algebra(), True, 8),
        rounds=1, iterations=1,
    )
    record(
        "theorem8_b3",
        [
            f"instance: {inst.n} nodes, A1={satisfies_a1(inst.graph)}, "
            f"A2={satisfies_a2(inst.graph)}",
            f"customer paths forced at stretch 8: {result.all_forced} "
            f"({result.forced_pairs}/{result.checked_pairs})",
        ],
    )
    assert satisfies_a1(inst.graph)  # Theorem 8 holds EVEN under A1+A2
    assert result.all_forced


@pytest.mark.parametrize("peer_augment", [False, True],
                         ids=["thm5-plain", "thm8-peered"])
def test_bgp_family_counting(benchmark, peer_augment):
    p, delta, targets = 2, 2, 3
    family, distinct = benchmark.pedantic(
        _count_bgp_family, args=(p, delta, targets, peer_augment),
        rounds=1, iterations=1,
    )
    record(
        f"bgp_counting_{'peered' if peer_augment else 'plain'}",
        [
            f"family of {family} directed instances (p={p}, delta={delta}, "
            f"|T|={targets})",
            f"distinct forced forwarding functions at center 0: {distinct} "
            f"(predicted delta^|T| = {delta ** targets})",
        ],
    )
    assert distinct == delta ** targets
