"""E-KRN — compiled graph kernel: comparisons-per-edge and wall clock.

The PR 5 acceptance experiment.  On an integer-weight Erdős–Rényi
instance at n = 1024, per-source preferred-path tree builds run through
three engines:

* **reference** — the seed implementation (networkx adjacency walk,
  ``_HeapEntry`` heap);
* **kernel-heap** — the same heap algorithm over the CSR-compiled
  arrays (isolates the flattening win);
* **kernel** — CSR arrays plus the Dial-style bucketed frontier, which
  the integer-key capability of ``ShortestPath`` unlocks.

The asserted quantity is deterministic: algebra **comparisons per edge
relaxation** (counted by instrumenting ``leq_finite``), which the bucket
frontier must cut by at least 2× versus the reference engine — bucket
runs never pay heap-sift key comparisons or ``eq`` staleness checks.
Wall-clock speedup is recorded for context (the acceptance criterion is
an OR; CI containers make time-based assertions flaky).  All three
engines must return identical trees, counted for identical relaxation
work.
"""

import random
import time

from conftest import record
from repro.algebra import ShortestPath
from repro.graphs import assign_random_weights, erdos_renyi
from repro.graphs.weighting import WEIGHT_ATTR
from repro.paths.dijkstra import compile_graph, preferred_path_tree

N = 1024
SOURCES = 48
MAX_WEIGHT = 16
REQUIRED_COMPARISON_RATIO = 2.0


class CountingShortestPath(ShortestPath):
    """ShortestPath that counts every finite-weight order comparison."""

    name = "shortest-path-counting"

    def __init__(self, max_weight):
        super().__init__(max_weight)
        self.leq_calls = 0

    def leq_finite(self, w1, w2):
        self.leq_calls += 1
        return w1 <= w2


def _measure(engine, graph, sources):
    """(trees, comparisons, seconds, stats-of-last-run) for one engine."""
    algebra = CountingShortestPath(MAX_WEIGHT)
    compiled = None
    start = time.perf_counter()
    if engine != "reference":
        compiled = compile_graph(graph, WEIGHT_ATTR)
    trees = [
        preferred_path_tree(graph, algebra, source, engine=engine,
                            compiled=compiled)
        for source in sources
    ]
    elapsed = time.perf_counter() - start
    return trees, algebra.leq_calls, elapsed, compiled


def test_kernel_cuts_comparisons_per_edge():
    seed_algebra = ShortestPath(max_weight=MAX_WEIGHT)
    rng = random.Random(51)
    graph = erdos_renyi(N, rng=rng)
    assign_random_weights(graph, seed_algebra, rng=random.Random(52))
    sources = sorted(random.Random(53).sample(sorted(graph.nodes()), SOURCES))
    arcs = 2 * graph.number_of_edges()  # directed arcs scanned per sweep

    ref_trees, ref_cmp, ref_s, _ = _measure("reference", graph, sources)
    heap_trees, heap_cmp, heap_s, _ = _measure("kernel-heap", graph, sources)
    kern_trees, kern_cmp, kern_s, compiled = _measure("kernel", graph, sources)

    # Bit-identical trees, and the bucket frontier actually engaged.
    for ref, heap, kern in zip(ref_trees, heap_trees, kern_trees):
        assert ref.weight == heap.weight == kern.weight
        assert ref.parent == heap.parent == kern.parent
    assert compiled.bucket_plan(CountingShortestPath(MAX_WEIGHT)) is not None

    denom = arcs * SOURCES
    ref_cpe = ref_cmp / denom
    heap_cpe = heap_cmp / denom
    kern_cpe = kern_cmp / denom
    ratio = ref_cpe / kern_cpe
    wall_speedup = ref_s / kern_s if kern_s else float("inf")

    record(
        "dijkstra_kernel",
        [
            f"erdos-renyi n={N} arcs={arcs}: {SOURCES} tree builds, "
            f"integer weights in [1, {MAX_WEIGHT}]",
            f"reference    {ref_cmp:>10d} comparisons "
            f"({ref_cpe:6.2f}/edge)  {ref_s:6.2f}s",
            f"kernel-heap  {heap_cmp:>10d} comparisons "
            f"({heap_cpe:6.2f}/edge)  {heap_s:6.2f}s",
            f"kernel       {kern_cmp:>10d} comparisons "
            f"({kern_cpe:6.2f}/edge)  {kern_s:6.2f}s",
            f"comparisons/edge: {ratio:.1f}x fewer than reference "
            f"(bar: {REQUIRED_COMPARISON_RATIO}x)",
            f"wall clock: {wall_speedup:.2f}x vs reference (informational)",
        ],
        data={
            "n": N,
            "arcs": arcs,
            "tree_builds": SOURCES,
            "max_weight": MAX_WEIGHT,
            "reference_comparisons_per_edge": ref_cpe,
            "kernel_heap_comparisons_per_edge": heap_cpe,
            "kernel_comparisons_per_edge": kern_cpe,
            "comparison_ratio": ratio,
            "reference_seconds": ref_s,
            "kernel_heap_seconds": heap_s,
            "kernel_seconds": kern_s,
            "wall_clock_speedup": wall_speedup,
        },
    )

    assert ratio >= REQUIRED_COMPARISON_RATIO, (
        f"bucket kernel does {kern_cpe:.2f} comparisons/edge vs reference "
        f"{ref_cpe:.2f} — only {ratio:.1f}x fewer "
        f"(need {REQUIRED_COMPARISON_RATIO}x)"
    )
