"""E24 — workload sensitivity of the compact scheme's stretch.

Theorem 3 bounds the stretch per pair; what a *network* experiences is
the distribution over its actual traffic.  This experiment routes three
workloads through the Cowen scheme on a scale-free graph — uniform pairs,
gravity pairs (hub-weighted), and for BGP a stub-to-stub workload through
the Theorem 7 scheme — and reports the stretch histograms.  Expectation:
the ≤3 bound holds everywhere; gravity traffic sees *more* optimal pairs,
because hubs are exactly where landmarks and big clusters sit.
"""

import random

from conftest import record
from repro.algebra import ShortestPath, valley_free_algebra
from repro.core import (
    EvaluationOptions,
    evaluate_scheme,
    gravity_pairs,
    run_experiment,
    stretch_histogram,
    stub_pairs,
    text_histogram,
    uniform_pairs,
)
from repro.graphs import assign_random_weights, barabasi_albert, coned_as_topology
from repro.routing import CowenScheme


def _cowen_workloads():
    algebra = ShortestPath(max_weight=16)
    graph = barabasi_albert(72, m=2, rng=random.Random(1))
    assign_random_weights(graph, algebra, rng=random.Random(2))
    scheme = CowenScheme(graph, algebra, rng=random.Random(3))
    out = {}
    for name, pairs in (
        ("uniform", uniform_pairs(graph, 400, rng=random.Random(4))),
        ("gravity", gravity_pairs(graph, 400, rng=random.Random(5))),
    ):
        report = evaluate_scheme(graph, algebra, scheme,
                                 options=EvaluationOptions(pairs=pairs))
        samples = []
        for s, t in pairs:
            result = scheme.route(s, t)
            samples.append((
                scheme.preferred_weight(s, t),
                algebra.path_weight(graph, list(result.path)),
            ))
        out[name] = (report, stretch_histogram(algebra, samples))
    return out


def test_cowen_workload_stretch(benchmark):
    outcomes = benchmark.pedantic(_cowen_workloads, rounds=1, iterations=1)
    lines = []
    for name, (report, histogram) in outcomes.items():
        lines.append(f"workload {name}: {report.summary()}")
        lines.extend("  " + line for line in text_histogram(histogram))
    record("workload_cowen_stretch", lines)
    for name, (report, histogram) in outcomes.items():
        assert report.all_delivered
        assert report.stretch.stretch3_holds
    uniform_opt = outcomes["uniform"][0].optimal / outcomes["uniform"][0].pairs
    gravity_opt = outcomes["gravity"][0].optimal / outcomes["gravity"][0].pairs
    # hub-weighted traffic is at least as often optimal as uniform traffic
    assert gravity_opt >= uniform_opt - 0.05


def test_bgp_stub_workload(benchmark):
    def run():
        algebra = valley_free_algebra()
        graph = coned_as_topology(3, 4, 8, rng=random.Random(6))
        pairs = stub_pairs(graph, 200, rng=random.Random(7))
        return run_experiment(
            graph, algebra,
            options=EvaluationOptions(pairs=pairs)).report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    record("workload_bgp_stubs", [report.summary()])
    assert report.all_delivered and report.all_optimal
