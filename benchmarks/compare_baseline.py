"""Gate benchmark results against the committed baseline.

Diffs ``benchmarks/results/summary.json`` (the run just produced) against
``benchmarks/baseline/summary.json`` (committed) and fails when a tracked
metric regressed by more than the tolerance (default 20%):

* fitted log-log slopes (any ``loglog_slope`` in an experiment's data):
  higher means worse asymptotic growth;
* memory numbers (any key ending in ``_bits``; lists compare their max):
  higher means more routing state;
* parallel ``speedup``: *lower* is worse, so the check is inverted — and
  it is only compared when both runs had enough CPUs to enforce it
  (``speedup_enforced``), since a single-core container cannot beat
  serial no matter what the code does;
* path-engine work rates (any key ending in ``_per_edge``, e.g. the
  kernel benchmark's comparisons-per-edge): higher means more work per
  relaxation, so higher is worse;
* the kernel benchmark's ``comparison_ratio`` (reference vs bucket
  comparisons-per-edge): *lower* is worse, inverted like speedup — but
  always enforced, since counting comparisons is deterministic and CPU
  independent;
* the batch-engine benchmark's ``batch_speedup`` (vectorized all-pairs
  sweep vs the per-source kernel): *lower* is worse, inverted like
  speedup and always enforced — the committed baseline holds the
  benchmark's own acceptance bar (5x), so the gate trips when the
  vectorized path decays back toward per-source Python speed;
* the query-engine benchmark's ``query_speedup`` (vectorized all-pairs
  shard evaluation vs the per-pair reference loop): *lower* is worse,
  inverted and always enforced like ``batch_speedup`` — the committed
  baseline holds the benchmark's own acceptance bar (4x), so the gate
  trips when pair evaluation decays back toward per-pair Python speed;
* telemetry overhead budgets (any key ending in ``_overhead_pct``, e.g.
  the event-stream benchmark's disabled-path cost): higher means the
  instrumentation eats more of the hot loop.  The baseline entry holds
  the *budget* (the benchmark's own assertion bar), not a measured
  sample, so the gate trips only when a measurement blows through the
  bar plus tolerance.

Experiments present in only one summary are reported but do not fail the
gate: CI may run a benchmark subset, and new experiments have no baseline
yet.  Exits 0 on success, 1 on regression, 2 when nothing was comparable
(almost certainly a misconfiguration).

Every invocation also appends one timestamped snapshot of the compared
metrics to ``benchmarks/BENCH_trajectory.json`` (disable with
``--no-trajectory``), giving the repo a cheap longitudinal record of how
each tracked number moves across runs.

Usage::

    python benchmarks/compare_baseline.py [--tolerance 0.2]
        [--current benchmarks/results/summary.json]
        [--baseline benchmarks/baseline/summary.json]
        [--trajectory benchmarks/BENCH_trajectory.json | --no-trajectory]
"""

import argparse
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_CURRENT = os.path.join(HERE, "results", "summary.json")
DEFAULT_BASELINE = os.path.join(HERE, "baseline", "summary.json")
DEFAULT_TRAJECTORY = os.path.join(HERE, "BENCH_trajectory.json")


def _walk(data, path=""):
    """Yield (dotted_path, value) for every leaf in a nested payload."""
    if isinstance(data, dict):
        for key, value in data.items():
            yield from _walk(value, f"{path}.{key}" if path else str(key))
    else:
        yield path, data


def _as_scalar(value):
    """Numeric view of a tracked leaf: lists of numbers compare their max."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    if (isinstance(value, list) and value
            and all(isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in value)):
        return float(max(value))
    return None


def tracked_metrics(payload):
    """metric path -> (value, direction) for one experiment's payload.

    direction is +1 when higher is worse (slopes, bits) and -1 when lower
    is worse (speedup).
    """
    data = payload.get("data")
    if not isinstance(data, dict):
        return {}
    metrics = {}
    for path, value in _walk(data):
        leaf = path.rsplit(".", 1)[-1]
        scalar = _as_scalar(value)
        if scalar is None:
            continue
        if (leaf == "loglog_slope" or leaf.endswith("_bits")
                or leaf.endswith("_per_edge")
                or leaf.endswith("_overhead_pct")):
            metrics[path] = (scalar, +1)
        elif leaf == "speedup" and data.get("speedup_enforced"):
            metrics[path] = (scalar, -1)
        elif leaf in ("comparison_ratio", "batch_speedup", "query_speedup"):
            metrics[path] = (scalar, -1)
    return metrics


def compare(baseline, current, tolerance):
    """Return (compared, regressions, notes) across shared experiments."""
    base_exps = baseline.get("experiments", {})
    cur_exps = current.get("experiments", {})
    compared, regressions, notes = [], [], []

    for name in sorted(set(base_exps) - set(cur_exps)):
        notes.append(f"baseline-only experiment (not run): {name}")
    for name in sorted(set(cur_exps) - set(base_exps)):
        notes.append(f"new experiment (no baseline yet): {name}")

    for name in sorted(set(base_exps) & set(cur_exps)):
        base_metrics = tracked_metrics(base_exps[name])
        cur_metrics = tracked_metrics(cur_exps[name])
        for path in sorted(set(base_metrics) & set(cur_metrics)):
            base_value, direction = base_metrics[path]
            cur_value, _ = cur_metrics[path]
            if base_value == 0:
                notes.append(f"skipped zero baseline: {name}:{path}")
                continue
            # +1: higher is worse; -1: lower is worse.
            change = direction * (cur_value - base_value) / abs(base_value)
            entry = (name, path, base_value, cur_value, change)
            compared.append(entry)
            if change > tolerance:
                regressions.append(entry)
    return compared, regressions, notes


def append_trajectory(path, current, compared, regressions, tolerance):
    """Append one timestamped snapshot of this run to the trajectory file.

    The file holds ``{"version": 1, "runs": [...]}``; each run carries the
    compared metric values keyed ``experiment:metric.path`` plus which of
    them regressed.  Corrupt or legacy files are restarted rather than
    crashed on — the trajectory is a convenience log, not a gate.
    """
    import datetime

    doc = {"version": 1, "runs": []}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"),
                                                       list):
                doc = loaded
        except (OSError, ValueError):
            pass
    doc["runs"].append({
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"),
        "experiment_count": len(current.get("experiments", {})),
        "tolerance": tolerance,
        "metrics": {f"{name}:{metric}": cur
                    for name, metric, _base, cur, _change in compared},
        "regressed": [f"{name}:{metric}"
                      for name, metric, _base, _cur, _change in regressions],
    })
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="fail when benchmark metrics regress past the baseline")
    parser.add_argument("--current", default=DEFAULT_CURRENT)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed relative regression (default 0.2 = 20%%)")
    parser.add_argument("--trajectory", default=DEFAULT_TRAJECTORY,
                        help="per-run snapshot log "
                             "(default benchmarks/BENCH_trajectory.json)")
    parser.add_argument("--no-trajectory", action="store_true",
                        help="skip appending this run to the trajectory log")
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.current) as handle:
        current = json.load(handle)

    compared, regressions, notes = compare(baseline, current, args.tolerance)

    if not args.no_trajectory:
        append_trajectory(args.trajectory, current, compared, regressions,
                          args.tolerance)

    for note in notes:
        print(f"note: {note}")
    for name, path, base_value, cur_value, change in compared:
        flag = " REGRESSED" if change > args.tolerance else ""
        print(f"{name}:{path}: {base_value:g} -> {cur_value:g} "
              f"({change:+.1%}){flag}")

    if not compared:
        print("error: no comparable metrics between baseline and current "
              "summaries", file=sys.stderr)
        return 2
    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed more than "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for name, path, base_value, cur_value, change in regressions:
            print(f"  {name}:{path}: {base_value:g} -> {cur_value:g} "
                  f"({change:+.1%})", file=sys.stderr)
        return 1
    print(f"\nOK: {len(compared)} metric(s) within {args.tolerance:.0%} "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
