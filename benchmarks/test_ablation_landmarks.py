"""E17 — ablation: landmark-selection strategies for the Cowen scheme.

Compares the three strategies (Thorup-Zwick-style random sampling, Cowen's
greedy cluster-capping, and degree-ranked landmarks) on memory, stretch
and landmark-set size, across an expander-like and a scale-free topology.
All must stay within the Theorem 3 stretch-3 bound; they differ in where
the memory goes (landmark table vs clusters).
"""

import random

import pytest

from conftest import record
from repro.algebra import ShortestPath
from repro.core import evaluate_scheme
from repro.graphs import assign_random_weights, barabasi_albert, erdos_renyi
from repro.routing import STRATEGIES, CowenScheme, memory_report

TOPOLOGIES = {
    "erdos-renyi": lambda: erdos_renyi(96, rng=random.Random(1)),
    "barabasi-albert": lambda: barabasi_albert(96, m=2, rng=random.Random(2)),
}


def _run(strategy, topology_factory):
    algebra = ShortestPath(max_weight=16)
    graph = topology_factory()
    assign_random_weights(graph, algebra, rng=random.Random(3))
    scheme = CowenScheme(graph, algebra, strategy=strategy, rng=random.Random(4))
    report = evaluate_scheme(graph, algebra, scheme)
    memory = memory_report(scheme)
    return scheme, report, memory


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES), ids=str)
@pytest.mark.parametrize("strategy", STRATEGIES, ids=str)
def test_landmark_ablation(benchmark, strategy, topology):
    scheme, report, memory = benchmark.pedantic(
        _run, args=(strategy, TOPOLOGIES[topology]), rounds=1, iterations=1
    )
    record(
        f"ablation_landmarks_{strategy}_{topology}",
        [
            f"landmarks: {len(scheme.landmarks)}  max cluster: "
            f"{scheme.max_cluster_size()}",
            f"memory: max {memory.max_bits}b avg {memory.avg_bits:.0f}b",
            report.summary(),
        ],
    )
    assert report.all_delivered
    assert report.stretch.stretch3_holds
