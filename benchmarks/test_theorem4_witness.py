"""E16 — Section 4.2: the shortest-widest condition (1) witness family.

Checks the explicit construction ``w_i = (i, (2k)^(i-1))`` for a sweep of
(p, k), and contrasts with the regular algebras, where randomized search
must fail for k >= 2 (condition (1) contradicts isotonicity there).
"""

import random

from conftest import record
from repro.algebra import (
    ShortestPath,
    WidestPath,
    shortest_widest_path,
    widest_shortest_path,
)
from repro.lowerbounds import (
    find_condition1_weights,
    satisfies_condition1,
    shortest_widest_condition1_weights,
)

P_VALUES = (2, 3, 4, 6)
K_VALUES = (1, 2, 3, 4)


def _sweep():
    sw = shortest_widest_path()
    outcomes = {}
    for p in P_VALUES:
        for k in K_VALUES:
            weights = shortest_widest_condition1_weights(p, k)
            outcomes[(p, k)] = satisfies_condition1(sw, weights, k).holds
    return outcomes


def test_sw_witness_sweep(benchmark):
    outcomes = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [
        f"p={p} k={k}: condition (1) holds = {holds}"
        for (p, k), holds in sorted(outcomes.items())
    ]
    record("theorem4_sw_witness", lines)
    assert all(outcomes.values())


def test_regular_algebras_admit_no_witness(benchmark):
    def search_all():
        results = {}
        for algebra in (ShortestPath(), WidestPath(), widest_shortest_path()):
            results[algebra.name] = find_condition1_weights(
                algebra, k=2, rng=random.Random(0), attempts=3000
            )
        return results

    results = benchmark.pedantic(search_all, rounds=1, iterations=1)
    record(
        "theorem4_regular_no_witness",
        [f"{name}: witness found = {found is not None}"
         for name, found in results.items()],
    )
    assert all(found is None for found in results.values())
