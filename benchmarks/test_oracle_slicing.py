"""E-ORC — lazy per-source oracle: sampled-pairs build slicing.

The PR 4 acceptance experiment.  On the largest seeded Erdős–Rényi
instance of the Table 1 suite (n = 512), a workload of ``2n`` sampled
pairs no longer pays for the all-pairs oracle: the lazy
:class:`~repro.core.simulate.PreferredWeightOracle` builds one Dijkstra
tree per *distinct source actually routed from*, never ``n``.

Two workloads are measured:

* **source-concentrated** (the asserted case): ``2n`` pairs whose
  sources come from a pool of ``n/8`` nodes — the client-server / stub
  traffic shape where few nodes originate most flows (cf. ``stub_pairs``
  for BGP topologies).  The lazy oracle must build at least 3× fewer
  trees than the eager ``n`` (asserted via the ``oracle.trees_built``
  telemetry counter, end-to-end through ``evaluate_scheme``).
* **uniform** (recorded for context): ``2n`` uniformly sampled pairs
  touch ≈ ``(1 - e^-2) n ≈ 0.86 n`` distinct sources, so laziness saves
  little there by design — the win is workload-shaped, and the numbers
  make that honest.
"""

import random
import time

from conftest import record
from repro.algebra import ShortestPath
from repro.core import (
    EvaluationOptions,
    evaluate_scheme,
    oracle_cache,
    preferred_weight_oracle,
    uniform_pairs,
)
from repro.core.compiler import build_scheme
from repro.graphs import assign_random_weights, erdos_renyi
from repro.obs.metrics import disable, enable, registry, reset
from repro.obs.tracing import clear_spans

N = 512
PAIR_COUNT = 2 * N
SOURCE_POOL = N // 8
REQUIRED_BUILD_RATIO = 3.0


def _concentrated_pairs(graph, count, pool_size, rng):
    """*count* distinct ordered pairs with sources from a *pool_size* pool."""
    nodes = sorted(graph.nodes())
    sources = sorted(rng.sample(nodes, pool_size))
    pairs = set()
    while len(pairs) < count:
        s = rng.choice(sources)
        t = rng.choice(nodes)
        if s != t:
            pairs.add((s, t))
    return sorted(pairs)


def test_lazy_oracle_slices_tree_builds():
    algebra = ShortestPath()
    graph = erdos_renyi(N, rng=random.Random(31))
    assign_random_weights(graph, algebra, rng=random.Random(32))
    scheme = build_scheme(graph, algebra)

    # Eager baseline: what every evaluation paid before PR 4.
    eager = preferred_weight_oracle(graph, algebra)
    start = time.perf_counter()
    eager.ensure_sources(graph.nodes())
    eager_s = time.perf_counter() - start
    assert eager.trees_built == N

    # Context: a uniform 2n sample still touches most sources.
    uniform = uniform_pairs(graph, PAIR_COUNT, rng=random.Random(41))
    lazy_uniform = preferred_weight_oracle(graph, algebra)
    for s, t in uniform:
        lazy_uniform(s, t)
    uniform_built = lazy_uniform.trees_built

    # The asserted case: source-concentrated workload, measured end to
    # end through the evaluation harness and its telemetry counter.
    pairs = _concentrated_pairs(graph, PAIR_COUNT, SOURCE_POOL,
                                random.Random(42))
    oracle_cache.clear()
    enable()
    reset()
    clear_spans()
    try:
        start = time.perf_counter()
        report = evaluate_scheme(graph, algebra, scheme,
                                 options=EvaluationOptions(pairs=pairs))
        lazy_s = time.perf_counter() - start
        built = registry().counter("oracle.trees_built").value
        cache_stats = oracle_cache.stats()
    finally:
        disable()
        reset()
        clear_spans()
        oracle_cache.clear()

    ratio = N / built if built else float("inf")
    uniform_ratio = N / uniform_built if uniform_built else float("inf")

    record(
        "oracle_slicing",
        [
            f"erdos-renyi n={N}: {PAIR_COUNT} sampled pairs "
            f"(source pool {SOURCE_POOL})",
            f"eager oracle      {N} trees   {eager_s:7.2f}s",
            f"lazy, concentrated {built} trees  {lazy_s:7.2f}s incl. routing "
            f"({ratio:.1f}x fewer builds)",
            f"lazy, uniform 2n   {uniform_built} trees "
            f"({uniform_ratio:.2f}x fewer builds — uniform sampling touches "
            f"most sources)",
            f"delivered {report.delivered}/{report.pairs}, "
            f"sources cached {cache_stats['sources_cached']}",
            f"3x bar (concentrated): {ratio:.1f}x >= "
            f"{REQUIRED_BUILD_RATIO}x",
        ],
        data={
            "n": N,
            "pair_count": PAIR_COUNT,
            "source_pool": SOURCE_POOL,
            "eager_trees_built": N,
            "eager_build_seconds": eager_s,
            "lazy_trees_built": built,
            "lazy_eval_seconds": lazy_s,
            "build_ratio": ratio,
            "uniform_trees_built": uniform_built,
            "uniform_build_ratio": uniform_ratio,
            "sources_cached": cache_stats["sources_cached"],
            "delivered": report.delivered,
            "pairs": report.pairs,
        },
    )

    assert built <= SOURCE_POOL
    assert ratio >= REQUIRED_BUILD_RATIO, (
        f"lazy oracle built {built} trees for {PAIR_COUNT} pairs "
        f"(only {ratio:.1f}x fewer than eager {N})"
    )
    assert report.all_delivered
