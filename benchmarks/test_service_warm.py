"""E-SRV — the persistent service answers warm queries >=10x faster.

The PR 7 acceptance experiment: on a 512-node graph, a long-lived
:class:`~repro.service.RoutingService` answering a repeated query batch
must beat calling :func:`repro.run_experiment` per batch (which rebuilds
the scheme and oracle every time) by at least an order of magnitude —
and the warm path must build nothing: zero oracle/scheme spans, zero new
trees.  Unlike the process-pool speedup bar, this one binds everywhere:
warm-vs-cold is single-threaded, so no CPU-count escape hatch.
"""

import random
import time

from conftest import record
from repro.algebra import ShortestPath
from repro.core import EvaluationOptions, oracle_cache, run_experiment
from repro.graphs import assign_random_weights, erdos_renyi
from repro.obs import clear_spans, disable, enable, reset, spans
from repro.service import RoutingService, ServiceOptions

N = 512
SOURCES = 24           # concentrated workload: realistic and bounded
PAIRS_PER_SOURCE = 40
WARM_ROUNDS = 5
REQUIRED_SPEEDUP = 10.0
SEED = 17


def _instance():
    algebra = ShortestPath()
    graph = erdos_renyi(N, rng=random.Random(SEED))
    assign_random_weights(graph, algebra, rng=random.Random(SEED + 1))
    return graph, algebra


def _workload(graph):
    rng = random.Random(SEED + 2)
    nodes = sorted(graph.nodes())
    pairs = []
    for source in rng.sample(nodes, SOURCES):
        for target in rng.sample(nodes, PAIRS_PER_SOURCE):
            if source != target:
                pairs.append((source, target))
    return pairs


def test_warm_service_beats_per_call_experiment():
    graph, algebra = _instance()
    pairs = _workload(graph)

    # Cold bar: one run_experiment call per batch — scheme + oracle paid
    # every time.  The shared oracle cache is cleared so the cold path is
    # honestly cold, like a fresh process per batch.
    oracle_cache.clear()
    start = time.perf_counter()
    cold_result = run_experiment(
        graph, algebra,
        options=EvaluationOptions(pairs=tuple(pairs), rng=SEED))
    cold_s = time.perf_counter() - start
    oracle_cache.clear()

    service = RoutingService(graph, algebra, ServiceOptions(seed=SEED))
    service.route(pairs)  # pay the build once, outside the timed window
    built = service.stats()["oracle"]["trees_built"]

    enable()
    reset()
    clear_spans()
    try:
        start = time.perf_counter()
        for _ in range(WARM_ROUNDS):
            answers = service.route(pairs)
        warm_s = (time.perf_counter() - start) / WARM_ROUNDS
        warm_spans = [s.name for s in spans()]
    finally:
        disable()
        reset()
        clear_spans()

    # The warm path built nothing: no oracle or scheme construction spans
    # (only the service.query envelope), and no new trees.
    build_spans = [name for name in warm_spans
                   if name not in ("service.query",)]
    assert build_spans == [], f"warm queries ran build spans: {build_spans}"
    assert service.stats()["oracle"]["trees_built"] == built
    assert service.scheme_builds == 1

    # Same answers as the one-call facade on the same pairs.
    routable = [a for a in answers if a.routable]
    assert len(routable) == cold_result.report.pairs
    assert sum(a.delivered for a in routable) == cold_result.report.delivered

    speedup = cold_s / warm_s if warm_s else float("inf")
    record(
        "service_warm_speedup",
        [
            f"erdos-renyi n={N}: {len(pairs)} pairs from {SOURCES} sources",
            f"cold run_experiment  {cold_s:8.3f}s per batch",
            f"warm service.route   {warm_s:8.3f}s per batch "
            f"(avg of {WARM_ROUNDS})",
            f"speedup {speedup:.1f}x (bar {REQUIRED_SPEEDUP:.0f}x, "
            f"always enforced)",
            f"warm build spans: {len(build_spans)}",
        ],
        data={
            "n": N,
            "pairs": len(pairs),
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "speedup": speedup,
            "speedup_enforced": True,
        },
    )
    assert speedup >= REQUIRED_SPEEDUP
