"""E22/E23 — protocol-level experiments.

E22 (Proposition 2, distributed form): distance-vector routing converges
to exact preferred weights for regular algebras but measurably
suboptimal ones for shortest-widest path — per-destination state cannot
express a non-isotone policy no matter how it is computed.

E23 (footnote 5): the distributed spanning tree protocol elects a tree;
usable-path tree routing over it delivers 100% on preferred paths with
logarithmic per-bridge state — Ethernet as a corollary of Theorem 1.
"""

import random

from conftest import record
from repro.algebra import UsablePath, shortest_widest_path, widest_shortest_path
from repro.algebra.base import PHI
from repro.graphs import assign_random_weights, assign_uniform_weight, erdos_renyi
from repro.paths import all_pairs_shortest_widest, preferred_path_tree
from repro.protocols import SpanningTreeProtocol, suboptimality_report
from repro.routing import TreeRoutingScheme, memory_report


def _prop2_gap():
    sw = shortest_widest_path(max_weight=9, max_capacity=9)
    ws = widest_shortest_path(max_weight=9, max_capacity=9)
    results = {}
    for name, algebra in (("shortest-widest (non-isotone)", sw),
                          ("widest-shortest (regular)", ws)):
        totals = {"optimal": 0, "suboptimal": 0}
        for seed in range(4):
            rng = random.Random(seed)
            graph = erdos_renyi(14, rng=rng)
            assign_random_weights(graph, algebra, rng=random.Random(seed + 50))
            if algebra is sw:
                routes = all_pairs_shortest_widest(graph)

                def oracle(s, t, routes=routes):
                    return routes[s][t].weight if t in routes[s] else PHI
            else:
                trees = {v: preferred_path_tree(graph, algebra, v)
                         for v in graph.nodes()}

                def oracle(s, t, trees=trees):
                    return trees[s].weight.get(t, PHI)

            report = suboptimality_report(graph, algebra, oracle)
            totals["optimal"] += report["optimal"]
            totals["suboptimal"] += report["suboptimal"]
        results[name] = totals
    return results


def test_prop2_distance_vector_gap(benchmark):
    results = benchmark.pedantic(_prop2_gap, rounds=1, iterations=1)
    lines = [
        f"{name}: optimal {t['optimal']}, suboptimal {t['suboptimal']}"
        for name, t in results.items()
    ]
    record("prop2_distance_vector_gap", lines)
    assert results["widest-shortest (regular)"]["suboptimal"] == 0
    assert results["shortest-widest (non-isotone)"]["suboptimal"] > 0


def _stp_pipeline():
    rows = []
    for n in (24, 96, 384):
        graph = erdos_renyi(n, rng=random.Random(n))
        assign_uniform_weight(graph, 1)
        protocol = SpanningTreeProtocol(graph)
        report = protocol.run()
        scheme = TreeRoutingScheme(graph, UsablePath(), tree=protocol.tree(),
                                   check_properties=False)
        sample = [(0, n - 1), (1, n // 2), (n // 3, n - 2)]
        delivered = all(scheme.route(s, t).delivered for s, t in sample)
        rows.append((n, report, memory_report(scheme).max_bits, delivered))
    return rows


def test_stp_to_tree_routing(benchmark):
    rows = benchmark.pedantic(_stp_pipeline, rounds=1, iterations=1)
    lines = [
        f"n={n:4d}  {report.summary()}  tree-routing max bits={bits}"
        for n, report, bits, _ in rows
    ]
    record("stp_usable_path", lines)
    for n, report, bits, delivered in rows:
        assert report.converged
        assert delivered
        assert bits <= 14 * n.bit_length()
