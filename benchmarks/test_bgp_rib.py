"""E25 — ranked BGP (B3): the linear RIB upper bound next to Theorem 8.

Theorem 8 denies B3 any compact scheme; what remains deployable is the
full per-destination RIB derived from converged path-vector state — the
thing the real Internet runs.  The experiment measures that RIB's
per-AS memory growing linearly (log-log slope ~1) while delivering 100%
of stable routes, quantifying the paper's closing question ("what can we
do if stretch doesn't help?"): pay Theta(n) per router.
"""

import random

from conftest import record
from repro.algebra import prefer_customer_algebra
from repro.core import build_scheme, loglog_slope
from repro.graphs import coned_as_topology
from repro.routing import memory_report

SCALES = (2, 6, 18)  # nodes = 3 + 3*(scale + 3*scale)


def _measure():
    algebra = prefer_customer_algebra()
    rows = []
    for scale in SCALES:
        graph = coned_as_topology(3, scale, 3 * scale, rng=random.Random(scale))
        scheme = build_scheme(graph, algebra)  # converged path-vector RIB
        n = graph.number_of_nodes()
        sample = [(i, j) for i in list(graph.nodes())[:4]
                  for j in list(graph.nodes())[-4:] if i != j]
        delivered = sum(1 for s, t in sample if scheme.route(s, t).delivered)
        rows.append((n, memory_report(scheme).max_bits, delivered, len(sample)))
    return rows


def test_b3_rib_linear_memory(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    lines = [
        f"n={n:4d}  RIB max bits={bits:5d}  delivered {done}/{total}"
        for n, bits, done, total in rows
    ]
    ns = [r[0] for r in rows]
    bits = [r[1] for r in rows]
    slope = loglog_slope(ns, bits)
    lines.append(f"log-log slope: {slope:.2f} (Theta(n) — the Theorem 8 floor)")
    record("b3_rib_memory", lines)
    for n, b, done, total in rows:
        assert done == total
    assert slope > 0.85
