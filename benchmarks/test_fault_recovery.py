"""E-FT — fault recovery: cost of surviving a worker kill mid-sweep.

PR 8's acceptance experiment: route every sampled pair of a 200-node
Waxman internetwork in parallel while ``REPRO_FAULT_SPEC`` SIGKILLs one
worker mid-shard, and check that (a) the merged report is bit-identical
to both the unfaulted parallel pass and the serial reference — salvage
plus re-issue loses nothing — and (b) the run recovers through the
retry path (no full-serial fallback).  The recorded overhead ratio
(faulted / unfaulted wall-clock) is the trend-tracked number: it bounds
what a single worker loss costs a large sweep now that it no longer
costs the whole run.
"""

import os
import random
import time

from conftest import record
from repro.algebra import ShortestPath
from repro.core import EvaluationOptions, evaluate_scheme, oracle_cache, sample_pairs
from repro.core.compiler import build_scheme
from repro.core.parallel import last_run_info
from repro.core.simulate import FAULT_SPEC_ENV
from repro.graphs import assign_random_weights, waxman

N = 200
WORKERS = 2
SHARD_SIZE = 5000


def test_worker_kill_recovery_is_exact_and_bounded():
    algebra = ShortestPath()
    graph = waxman(N, rng=random.Random(31))
    assign_random_weights(graph, algebra, rng=random.Random(32))
    scheme = build_scheme(graph, algebra)
    pairs = sample_pairs(graph)
    oracle_cache.get(graph, algebra, attr=scheme.attr, scheme_name=scheme.name)
    options = EvaluationOptions(workers=WORKERS, shard_size=SHARD_SIZE)

    serial = evaluate_scheme(graph, algebra, scheme)

    start = time.perf_counter()
    unfaulted = evaluate_scheme(graph, algebra, scheme, options=options)
    unfaulted_s = time.perf_counter() - start

    previous = os.environ.get(FAULT_SPEC_ENV)
    os.environ[FAULT_SPEC_ENV] = "kill:shard=1:once"
    try:
        start = time.perf_counter()
        faulted = evaluate_scheme(graph, algebra, scheme, options=options)
        faulted_s = time.perf_counter() - start
    finally:
        if previous is None:
            del os.environ[FAULT_SPEC_ENV]
        else:
            os.environ[FAULT_SPEC_ENV] = previous

    run = last_run_info()
    recovery = dict(run.recovery) if run else {}
    overhead = faulted_s / unfaulted_s if unfaulted_s else float("inf")

    record(
        "fault_recovery",
        [
            f"waxman n={N}: {len(pairs)} ordered pairs, "
            f"workers={WORKERS}, shard_size={SHARD_SIZE}",
            f"unfaulted {unfaulted_s:8.2f}s",
            f"1 worker killed {faulted_s:8.2f}s  (overhead {overhead:.2f}x)",
            f"recovery: {recovery}",
            f"reports identical: {faulted == serial == unfaulted}",
            f"serial fallback avoided: {run is not None and run.fallback is None}",
        ],
        data={
            "n": N,
            "pairs": len(pairs),
            "workers": WORKERS,
            "shard_size": SHARD_SIZE,
            "unfaulted_seconds": unfaulted_s,
            "faulted_seconds": faulted_s,
            "overhead_ratio": overhead,
            "recovery": recovery,
            "identical": faulted == serial == unfaulted,
            "fallback": run.fallback.reason if run and run.fallback else None,
        },
    )

    assert unfaulted == serial
    assert faulted == serial
    assert run is not None and run.fallback is None, (
        "worker kill must be absorbed by the retry path, "
        "not the full-serial fallback")
    assert recovery.get("recovered") is True
    assert recovery.get("shards_lost", 0) >= 1
