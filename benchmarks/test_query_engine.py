"""E-QRY — vectorized query engine: all-pairs evaluation vs the seed loop.

The query-engine acceptance experiment.  A Cowen scheme is built once on
an integer-weight Erdős–Rényi instance (n = 1024), the oracle's preferred
trees are pre-built for every source, and then the **same all-pairs shard**
(n·(n−1) ordered pairs) is evaluated twice through ``route_shard``:

* **reference** — the seed per-pair loop: one ``scheme.route(s, t)`` call
  per pair, hop by hop through Python ``local_decision`` evaluations;
* **batch** — the compiled query tables
  (:mod:`repro.routing.compiled_query`): the whole shard walks the flat
  int arrays one vectorized step at a time, realized weights decoded
  from additive integer keys at emit.

The batch timing includes its own table compile, so the ratio is
end-to-end for a single shard.  Exactness comes first: both engines must
produce the same routed/delivered/optimal counts, failure tuples and
stretch report, bit for bit.  The asserted bar is **>= 4x wall clock**;
the ratio lands in the committed baseline as ``query_speedup`` so
``compare_baseline.py`` trips when pair evaluation decays back toward
per-pair Python speed.

Skips (not fails) when numpy — the ``repro[fast]`` optional extra — is
not installed.
"""

import random
import time

import pytest

from conftest import record
from repro.algebra import ShortestPath
from repro.core.simulate import oracle_cache, route_shard
from repro.graphs import assign_random_weights, erdos_renyi
from repro.graphs.weighting import WEIGHT_ATTR
from repro.routing import compiled_query
from repro.routing.cowen import CowenScheme

N = 1024
MAX_WEIGHT = 16
REQUIRED_SPEEDUP = 4.0

pytestmark = pytest.mark.skipif(
    not compiled_query.numpy_available(),
    reason="numpy not installed (the repro[fast] optional extra)",
)


def test_query_all_pairs_speedup(monkeypatch):
    algebra = ShortestPath(max_weight=MAX_WEIGHT)
    graph = erdos_renyi(N, rng=random.Random(61))
    assign_random_weights(graph, algebra, rng=random.Random(62))
    scheme = CowenScheme(graph, algebra, rng=random.Random(63))
    oracle = oracle_cache.get(graph, algebra, WEIGHT_ATTR)
    nodes = list(graph.nodes())
    pairs = [(s, t) for s in nodes for t in nodes if s != t]
    # Pre-build every preferred tree so both timings measure evaluation,
    # not oracle construction.
    oracle.ensure_sources(nodes)

    monkeypatch.setenv("REPRO_QUERY_ENGINE", "reference")
    start = time.perf_counter()
    reference = route_shard(algebra, scheme, oracle, list(pairs))
    reference_s = time.perf_counter() - start

    monkeypatch.setenv("REPRO_QUERY_ENGINE", "batch")
    start = time.perf_counter()
    batch = route_shard(algebra, scheme, oracle, list(pairs))
    batch_s = time.perf_counter() - start

    # Exactness first: speed without bit-identity would corrupt reports.
    assert batch.routed == reference.routed
    assert batch.delivered == reference.delivered
    assert batch.optimal == reference.optimal
    assert batch.failures == reference.failures
    assert batch.stretch == reference.stretch

    speedup = reference_s / batch_s if batch_s else float("inf")
    per_pair_reference = reference_s / len(pairs) * 1e6
    per_pair_batch = batch_s / len(pairs) * 1e6

    record(
        "query_engine",
        [
            f"erdos-renyi n={N}, cowen scheme, all-pairs shard of "
            f"{len(pairs)} ordered pairs, integer weights in "
            f"[1, {MAX_WEIGHT}]",
            f"reference (per-pair loop)  {reference_s:7.2f}s "
            f"({per_pair_reference:6.2f} us/pair)",
            f"batch (compiled tables)    {batch_s:7.2f}s "
            f"({per_pair_batch:6.2f} us/pair)",
            f"wall clock: {speedup:.1f}x vs reference "
            f"(bar: {REQUIRED_SPEEDUP}x)",
            "shard results bit-identical across engines "
            "(counts, failures, stretch)",
        ],
        data={
            "n": N,
            "pairs": len(pairs),
            "max_weight": MAX_WEIGHT,
            "reference_seconds": reference_s,
            "batch_seconds": batch_s,
            "query_speedup": speedup,
        },
    )

    assert speedup >= REQUIRED_SPEEDUP, (
        f"batch query engine ran {speedup:.1f}x the reference loop "
        f"(reference {reference_s:.2f}s, batch {batch_s:.2f}s; "
        f"need {REQUIRED_SPEEDUP}x)"
    )
