"""E26 — the three routing paradigms on one instance.

Link-state, distance-vector and path-vector all realize shortest-path
routing on the same graphs; they differ in *what* they ship and *what*
they store:

* link-state: floods the topology — most messages carry LSAs, every node
  stores Theta(m log W) bits of database besides its table;
* distance-vector: ships (dest, weight) vectors — least state, but only
  exact for regular algebras (E22) and failure-fragile;
* path-vector: ships full paths — message sizes grow, but policies and
  loop suppression come for free (Section 5's reason to exist).

The experiment measures rounds/activations, message counts and per-node
state for all three on growing ER graphs, with all route sets verified
identical.
"""

import random

from conftest import record
from repro.algebra import ShortestPath
from repro.graphs import assign_random_weights, erdos_renyi
from repro.protocols import (
    DistanceVectorSimulation,
    LinkStateSimulation,
    PathVectorSimulation,
)

SIZES = (16, 32, 64)


def _compare():
    algebra = ShortestPath(max_weight=16)
    rows = []
    for n in SIZES:
        rng = random.Random(n)
        graph = erdos_renyi(n, rng=rng)
        assign_random_weights(graph, algebra, rng=rng)

        ls = LinkStateSimulation(graph, algebra)
        ls_report = ls.run()
        dv = DistanceVectorSimulation(graph, algebra)
        dv_report = dv.run()
        pv = PathVectorSimulation(graph, algebra)
        pv_report = pv.run()

        agree = all(
            algebra.eq(ls.weight(s, t), dv.weight(s, t))
            and algebra.eq(dv.weight(s, t), pv.route(s, t).weight)
            for s in list(graph.nodes())[:6]
            for t in graph.nodes()
            if s != t
        )
        lsdb = max(ls.lsdb_bits(v) for v in graph.nodes())
        rows.append((n, ls_report, dv_report, pv_report, lsdb, agree))
    return rows


def test_three_paradigms(benchmark):
    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)
    lines = []
    for n, ls, dv, pv, lsdb, agree in rows:
        lines.append(
            f"n={n:3d}  LS: {ls.rounds} rounds/{ls.lsa_transmissions} LSAs "
            f"(db {lsdb}b)  DV: {dv.rounds} rounds/{dv.vector_exchanges} vecs  "
            f"PV: {pv.activations} acts/{pv.messages} msgs  agree={agree}"
        )
    record("protocol_comparison", lines, data={
        "sizes": list(SIZES),
        "rows": [
            {
                "n": n,
                "link_state": {"rounds": ls.rounds,
                               "lsa_transmissions": ls.lsa_transmissions,
                               "max_lsdb_bits": lsdb},
                "distance_vector": {"rounds": dv.rounds,
                                    "vector_exchanges": dv.vector_exchanges},
                "path_vector": {"activations": pv.activations,
                                "messages": pv.messages},
                "routes_agree": agree,
            }
            for n, ls, dv, pv, lsdb, agree in rows
        ],
    })
    for n, ls, dv, pv, lsdb, agree in rows:
        assert ls.converged and dv.converged and pv.converged
        assert agree
