"""E18 — ablation: tree routing vs destination tables on selective algebras.

Theorem 1 says selective+monotone policies don't need per-destination
state; this ablation quantifies the gap on widest-path routing: the naive
destination table pays Theta(n log d) per node while the Lemma 1 tree +
heavy-path labels pay Theta(log n) — both route optimally.
"""

import random

from conftest import record
from repro.algebra import WidestPath
from repro.core import evaluate_scheme, loglog_slope
from repro.graphs import assign_random_weights, erdos_renyi
from repro.routing import DestinationTableScheme, TreeRoutingScheme, memory_report

SIZES = (32, 96, 288)


def _measure():
    algebra = WidestPath(max_capacity=32)
    rows = []
    for n in SIZES:
        rng = random.Random(n)
        graph = erdos_renyi(n, rng=rng)
        assign_random_weights(graph, algebra, rng=rng)
        tree_scheme = TreeRoutingScheme(graph, algebra)
        table_scheme = DestinationTableScheme(graph, algebra)
        verify = None
        if n == SIZES[0]:
            verify = (
                evaluate_scheme(graph, algebra, tree_scheme),
                evaluate_scheme(graph, algebra, table_scheme),
            )
        rows.append((
            n,
            memory_report(tree_scheme).max_bits,
            memory_report(table_scheme).max_bits,
            verify,
        ))
    return rows


def test_tree_vs_tables_on_widest_path(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    lines = ["n     tree bits   table bits   ratio"]
    for n, tree_bits, table_bits, _ in rows:
        lines.append(f"{n:<6d}{tree_bits:<12d}{table_bits:<13d}"
                     f"{table_bits / tree_bits:.1f}x")
    ns = [r[0] for r in rows]
    tree_slope = loglog_slope(ns, [r[1] for r in rows])
    table_slope = loglog_slope(ns, [r[2] for r in rows])
    lines.append(f"log-log slopes: tree {tree_slope:.2f}, tables {table_slope:.2f}")
    record("ablation_tree_vs_tables", lines)

    # both schemes route optimally (verified at the smallest size) ...
    tree_report, table_report = rows[0][3]
    assert tree_report.all_optimal and table_report.all_optimal
    # ... but only the tree scheme is logarithmic
    assert tree_slope < 0.4
    assert table_slope > 0.85
    assert rows[-1][2] > 8 * rows[-1][1]  # order-of-magnitude gap at n=288
