"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517/660 editable installs (which build an editable wheel) fail.  With
this shim and no ``[build-system]`` table in pyproject.toml, ``pip install
-e .`` falls back to the classic ``setup.py develop`` path, which needs no
wheel support.  All metadata still lives in pyproject.toml.
"""

from setuptools import setup

setup()
