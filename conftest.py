"""Repo-level pytest configuration.

Puts ``src/`` on ``sys.path`` so the test and benchmark suites run against
the in-tree package even when the editable install is absent (the offline
environment lacks the ``wheel`` package needed by PEP 660 installs).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
