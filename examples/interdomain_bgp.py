#!/usr/bin/env python3
"""Inter-domain (BGP) policy routing: the Section 5 story end to end.

Builds a synthetic three-tier AS internet (tier-1 peer mesh, provider
hierarchies, Gao-Rexford relationships), then:

1. routes with the valley-free algebra B2 and verifies every realized path
   is p* (r|eps) c* — climb, one peer hop, descend;
2. shows the Theorem 6/7 compact schemes need only ~log n bits per AS;
3. shows why local preference (B3) breaks everything: the Theorem 8
   lower-bound construction forces preferred-path routing at any stretch.

Run:  python examples/interdomain_bgp.py
"""

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.algebra import (
    prefer_customer_algebra,
    provider_customer_algebra,
    valley_free_algebra,
)
from repro.core import build_scheme, evaluate_scheme
from repro.exceptions import NotApplicableError
from repro.graphs import (
    coned_as_topology,
    fig2_bgp_instance,
    roots,
    satisfies_a1,
    satisfies_a2,
)
from repro.lowerbounds import verify_preferred_paths_forced
from repro.paths import bgp_routes
from repro.routing import memory_report


def main():
    rng = random.Random(3)
    internet = coned_as_topology(tier1=4, tier2_per_cone=3, stubs_per_cone=8,
                                 rng=rng, providers_per_node=2)
    n = internet.number_of_nodes()
    print(f"synthetic internet: {n} ASes, tier-1 roots {roots(internet)}")
    print(f"assumption A1 (global reachability): {satisfies_a1(internet)}")
    print(f"assumption A2 (no provider loops):   {satisfies_a2(internet)}\n")

    b2 = valley_free_algebra()
    stub = n - 1
    print(f"sample BGP RIB of stub AS {stub} (first 6 routes):")
    for target, route in sorted(bgp_routes(internet, b2, stub).items())[:6]:
        print(f"  -> AS{target}: type={route.label} path={route.path}")
    print()

    print("--- Theorem 7: compact valley-free routing under A1 + A2 ---")
    scheme = build_scheme(internet, b2)
    report = evaluate_scheme(internet, b2, scheme)
    print(f"  {report.summary()}")
    print(f"  per-AS state: max {memory_report(scheme).max_bits} bits "
          f"(vs a {n}-entry BGP RIB)\n")

    print("--- Theorem 5: without A1/A2, B1 is incompressible ---")
    instance = fig2_bgp_instance(p=2, delta=3)
    forced = verify_preferred_paths_forced(instance, provider_customer_algebra(), k=8)
    print(f"  Fig. 2 family ({instance.n} nodes): every non-preferred path "
          f"untraversable even at stretch 8: {forced.all_forced}\n")

    print("--- Theorem 8: local preference (B3) kills compressibility ---")
    b3 = prefer_customer_algebra()
    augmented = fig2_bgp_instance(p=2, delta=3, peer_augment=True)
    print(f"  peer-augmented instance satisfies A1: {satisfies_a1(augmented.graph)}")
    forced = verify_preferred_paths_forced(augmented, b3, k=8)
    print(f"  customer-preferred paths forced at stretch 8: {forced.all_forced}")
    try:
        build_scheme(internet, b3, mode="compact")
    except NotApplicableError as exc:
        print(f"  compact mode refused (as it must): {exc}")
    rib = build_scheme(internet, b3)  # the Internet's answer: a linear RIB
    print(f"  the deployable fallback is a full RIB: "
          f"{memory_report(rib).max_bits} bits/AS (Theta(n), not compact)")


if __name__ == "__main__":
    main()
