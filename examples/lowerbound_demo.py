#!/usr/bin/env python3
"""The incompressibility machinery, hands on (Fig. 2, Theorems 4 and 5).

Walks the Fraigniaud-Gavoille-style counting argument the paper's lower
bounds rest on:

1. build the Fig. 2 graph family for small (p, delta, |T|);
2. verify the *forcing* premise: with condition (1) weights (here the
   Section 4.2 shortest-widest witness), every path other than the
   preferred two-hop one already violates the stretch bound — so even a
   stretch-k scheme must encode the exact preferred paths;
3. enumerate the whole family and count the distinct local forwarding
   functions a center node must be able to realize: delta^|T| of them,
   i.e. |T| * log2(delta) bits — Omega(n log delta).

Run:  python examples/lowerbound_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.algebra import MinHop, shortest_widest_path
from repro.graphs import fig2_instance
from repro.lowerbounds import (
    count_distinct_center_maps,
    satisfies_condition1,
    shortest_widest_condition1_weights,
    verify_preferred_paths_forced,
)


def main():
    p, delta, targets, k = 2, 2, 4, 2
    print(f"Fig. 2 parameters: p={p} centers, delta={delta} fan-out, "
          f"|T|={targets} targets, stretch budget k={k}\n")

    print("step 1 — the condition (1) witness (Section 4.2, SW policy):")
    sw = shortest_widest_path()
    weights = shortest_widest_condition1_weights(p, k)
    check = satisfies_condition1(sw, weights, k)
    print(f"  weights w_i = (i, (2k)^(i-1)) = {weights}")
    print(f"  w_i ⊕ w_j ≻ w_i^{2 * k} for all i != j: {check.holds}\n")

    print("step 2 — forcing: non-preferred paths violate the stretch bound:")
    instance = fig2_instance(p, delta, weights)
    forced = verify_preferred_paths_forced(instance, sw, k)
    print(f"  instance: {instance.n} nodes, checked "
          f"{forced.checked_pairs} (center, target) pairs")
    print(f"  all alternatives beyond stretch {k}: {forced.all_forced}")
    contrast = verify_preferred_paths_forced(fig2_instance(p, delta, [1] * p),
                                             MinHop(), 3)
    print(f"  (contrast, plain min-hop weights: forced only "
          f"{contrast.forced_pairs}/{contrast.checked_pairs} — stretch "
          f"genuinely helps there, per Theorem 3)\n")

    print("step 3 — counting distinct forced forwarding functions:")
    result = count_distinct_center_maps(p, delta, weights, targets)
    print(f"  {result.summary()}")
    print(f"  family size: {result.family_size} graphs; per-center distinct "
          f"functions: {result.distinct_maps_per_center}")
    print(f"  measured lower bound: {result.measured_bits:.1f} bits = "
          f"|T| log2(delta) = {result.predicted_bits:.1f} bits")
    print("\n=> with |T| = Theta(n) targets this is Omega(n log delta) bits "
          "at some node, for ANY stretch-k scheme (Theorem 4).")


if __name__ == "__main__":
    main()
