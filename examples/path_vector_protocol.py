#!/usr/bin/env python3
"""Path-vector dynamics: convergence, failure recovery, and BAD GADGET.

BGP — the protocol behind the paper's Section 5 algebras — is a
path-vector protocol: nodes advertise their chosen routes and import them
through the algebra's right-associative ⊕.  This example runs the
event-driven simulation three ways:

1. a regular algebra (shortest path) converging to exactly the
   generalized-Dijkstra routes, then re-converging around a link failure;
2. the valley-free algebra B2 on a synthetic internet, converging to
   stable Gao-Rexford routes;
3. the non-monotone dispute wheel (BAD GADGET), which has *no* stable
   state and oscillates forever — the executable version of the paper's
   warning that monotonicity is what keeps distributed policy routing
   sane.

Run:  python examples/path_vector_protocol.py
"""

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.algebra import ShortestPath, valley_free_algebra
from repro.graphs import assign_random_weights, coned_as_topology, ring
from repro.paths import preferred_path_tree
from repro.protocols import DisputeWheelAlgebra, PathVectorSimulation, bad_gadget


def main():
    print("=" * 72)
    print("1. shortest path on a ring: convergence and failure recovery")
    algebra = ShortestPath(max_weight=9)
    graph = ring(8)
    assign_random_weights(graph, algebra, rng=random.Random(0))
    sim = PathVectorSimulation(graph, algebra)
    print(f"   {sim.run().summary()}")
    tree = preferred_path_tree(graph, algebra, 0)
    agree = all(
        algebra.eq(sim.route(0, t).weight, tree.weight[t])
        for t in graph.nodes() if t != 0
    )
    print(f"   routes match generalized Dijkstra: {agree}")
    print(f"   route 0 -> 4 before failure: {sim.route(0, 4).path}")
    victim = sim.route(0, 4).path[:2]
    sim.fail_edge(*victim)
    print(f"   failing link {victim} ...")
    print(f"   {sim.run().summary()}")
    print(f"   route 0 -> 4 after failure:  {sim.route(0, 4).path}\n")

    print("=" * 72)
    print("2. valley-free BGP (B2) on a synthetic internet")
    internet = coned_as_topology(3, 3, 6, rng=random.Random(1))
    b2 = valley_free_algebra()
    sim = PathVectorSimulation(internet, b2)
    print(f"   {sim.run().summary()}  stable: {sim.is_stable()}")
    stub = max(internet.nodes())
    sample = sorted(sim.routes_from(stub).items())[:4]
    for target, route in sample:
        print(f"   AS{stub} -> AS{target}: type={route.weight} path={route.path}")
    print()

    print("=" * 72)
    print("3. BAD GADGET: the dispute wheel (non-monotone policy)")
    sim = PathVectorSimulation(bad_gadget(3), DisputeWheelAlgebra(),
                               max_activations=30_000)
    print(f"   {sim.run().summary()}")
    print("   (no stable route assignment exists: each rim node prefers the")
    print("   route through its neighbor exactly while that neighbor routes")
    print("   directly — the oscillation BGP policy disputes are made of)")


if __name__ == "__main__":
    main()
