#!/usr/bin/env python3
"""QoS routing: widest-shortest vs shortest-widest path (Table 1, Section 4.2).

The two classic QoS policies differ only in the order of their
lexicographic product — and end up on opposite sides of the paper's
compact-routing frontier:

* ``WS = S x W`` (widest-shortest) is regular: destination tables work,
  and the Theorem 3 stretch-3 compact scheme applies;
* ``SW = W x S`` (shortest-widest) is NOT isotone: only per-pair tables
  implement it, and by Theorem 4 + the Section 4.2 weight construction it
  admits no compact scheme at ANY finite stretch.

This example routes a multimedia-flavoured workload (capacity + latency
edge weights) under both policies and makes the asymmetry concrete.

Run:  python examples/qos_routing.py
"""

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.algebra import shortest_widest_path, widest_shortest_path
from repro.core import build_scheme, classify, evaluate_scheme
from repro.graphs import assign_random_weights, barabasi_albert
from repro.lowerbounds import (
    satisfies_condition1,
    shortest_widest_condition1_weights,
)
from repro.routing import memory_report


def main():
    rng = random.Random(1)
    # An ISP-flavoured scale-free backbone; weights are (per-policy) pairs.
    graph = barabasi_albert(48, m=2, rng=rng)
    print(f"topology: Barabasi-Albert, n={graph.number_of_nodes()}, "
          f"m={graph.number_of_edges()}\n")

    ws = widest_shortest_path(max_weight=20, max_capacity=100)
    sw = shortest_widest_path(max_weight=20, max_capacity=100)

    print("--- widest-shortest path (WS = S x W) ---")
    print(f"classification: {classify(ws).summary()}")
    assign_random_weights(graph, ws, rng=rng)
    scheme = build_scheme(graph, ws)
    print(f"exact:   {evaluate_scheme(graph, ws, scheme).summary()}")
    compact = build_scheme(graph, ws, mode="compact", rng=random.Random(2))
    print(f"compact: {evaluate_scheme(graph, ws, compact).summary()}")
    print(f"memory: tables {memory_report(scheme).max_bits}b vs "
          f"compact {memory_report(compact).max_bits}b\n")

    print("--- shortest-widest path (SW = W x S) ---")
    print(f"classification: {classify(sw).summary()}")
    assign_random_weights(graph, sw, rng=rng)
    pair_scheme = build_scheme(graph, sw)  # per-pair tables: O(n^2 log d)
    print(f"pair tables: {evaluate_scheme(graph, sw, pair_scheme).summary()}")

    # Theorem 4 witness: for every stretch k there are weights making any
    # compact scheme impossible.
    for k in (1, 2, 3):
        weights = shortest_widest_condition1_weights(p=3, k=k)
        result = satisfies_condition1(sw, weights, k)
        print(f"condition (1) witness for stretch {k}: weights={weights} "
              f"holds={result.holds}")
    print("\n=> SW cannot be compacted at any finite stretch (Theorem 4); "
          "WS routes with stretch <= 3 and sublinear tables (Theorem 3).")


if __name__ == "__main__":
    main()
