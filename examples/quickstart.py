#!/usr/bin/env python3
"""Quickstart: classify a routing policy, build a scheme, route packets.

This walks the library's whole pipeline on the two canonical policies of
the paper's Table 1 — shortest path (incompressible) and widest path
(compressible) — and shows the storage/stretch trade-off of Theorem 3.

Run:  python examples/quickstart.py
"""

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.algebra import ShortestPath, WidestPath
from repro.core import build_scheme, classify, evaluate_scheme
from repro.graphs import assign_random_weights, erdos_renyi
from repro.routing import memory_report


def main():
    rng = random.Random(42)
    graph = erdos_renyi(64, rng=rng)
    print(f"topology: Erdos-Renyi, n={graph.number_of_nodes()}, "
          f"m={graph.number_of_edges()}\n")

    for algebra in (ShortestPath(max_weight=20), WidestPath(max_capacity=20)):
        print("=" * 72)
        print(f"policy: {algebra.name}")
        # 1. What does the theory say? (Theorems 1-3 as a decision tree.)
        verdict = classify(algebra)
        print(f"  classification: {verdict.summary()}")
        for reason in verdict.reasons:
            print(f"    - {reason}")

        # 2. Build the scheme the theory prescribes and route everything.
        assign_random_weights(graph, algebra, rng=rng)
        scheme = build_scheme(graph, algebra)
        report = evaluate_scheme(graph, algebra, scheme)
        print(f"  exact scheme:   {report.summary()}")

        # 3. For regular+delimited algebras, also build the compact
        #    (stretch-3) scheme of Theorem 3 and compare memory.
        if verdict.stretch3_scheme_exists:
            compact = build_scheme(graph, algebra, mode="compact",
                                   rng=random.Random(7))
            compact_report = evaluate_scheme(graph, algebra, compact)
            print(f"  compact scheme: {compact_report.summary()}")
            exact_bits = memory_report(scheme).max_bits
            compact_bits = memory_report(compact).max_bits
            print(f"  worst-case local memory: exact {exact_bits}b vs "
                  f"compact {compact_bits}b")
        print()


if __name__ == "__main__":
    main()
