#!/usr/bin/env python3
"""Define your own routing policy as an algebra and let the library place it.

The paper's framework is generic: any policy expressible as a totally
ordered commutative semigroup with infinity slots straight into the
machinery.  This example defines two custom policies —

* **fewest-expensive-links**: minimize the number of expensive edges on
  the path (an additive policy that is only weakly monotone), and
* **most-trusted path**: edges carry a discrete trust level 1..5; a path's
  trust is its weakest link; prefer stronger (a widest-path relative);

then measures their algebraic properties, classifies them with the
paper's theorems, builds the prescribed schemes, and verifies routing.

Run:  python examples/custom_algebra.py
"""

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.algebra import PropertyProfile, RoutingAlgebra, empirical_profile
from repro.core import build_scheme, evaluate_scheme, investigate
from repro.graphs import assign_random_weights, random_geometric


class ExpensiveLinkCount(RoutingAlgebra):
    """Weights count expensive links: ``(N ∪ {0}, inf, +, <=)`` flavored.

    Edges are weighted 0 (cheap) or 1 (expensive); a path's weight is its
    number of expensive links.  Monotone but only weakly: prepending a
    cheap link leaves the weight unchanged, so the algebra is NOT strictly
    monotone — it sits in the paper's open middle ground (Section 6).
    """

    name = "expensive-link-count"

    def combine_finite(self, w1, w2):
        return w1 + w2

    def leq_finite(self, w1, w2):
        return w1 <= w2

    def contains(self, weight):
        return isinstance(weight, int) and weight >= 0

    def sample_weights(self, rng, count):
        return [rng.choice((0, 0, 0, 1)) for _ in range(count)]

    def declared_properties(self):
        return PropertyProfile(
            monotone=True, isotone=True, strictly_monotone=False,
            selective=False, cancellative=True, condensed=False, delimited=True,
        )


class MostTrustedPath(RoutingAlgebra):
    """Min-trust composition over discrete levels, prefer higher.

    Isomorphic to widest-path on a 5-point scale: selective, monotone,
    isotone — Theorem 1 applies and tree routing is exact.
    """

    name = "most-trusted-path"
    LEVELS = (1, 2, 3, 4, 5)

    def combine_finite(self, w1, w2):
        return min(w1, w2)

    def leq_finite(self, w1, w2):
        return w1 >= w2

    def contains(self, weight):
        return weight in self.LEVELS

    def sample_weights(self, rng, count):
        return [rng.choice(self.LEVELS) for _ in range(count)]

    def canonical_weights(self):
        return self.LEVELS

    def declared_properties(self):
        return PropertyProfile(
            monotone=True, isotone=True, strictly_monotone=False,
            selective=True, cancellative=False, condensed=False, delimited=True,
        )


def main():
    rng = random.Random(10)
    graph = random_geometric(48, rng=rng)
    print(f"topology: random geometric, n={graph.number_of_nodes()}, "
          f"m={graph.number_of_edges()}\n")

    for algebra in (MostTrustedPath(), ExpensiveLinkCount()):
        print("=" * 72)
        print(f"policy: {algebra.name}")
        measured = empirical_profile(algebra, rng=random.Random(0))
        print(f"  measured properties: [{measured.summary()}]")
        # investigate() goes further than classify(): it *searches* for a
        # Lemma 2 generator / Theorem 4 witness inside the algebra itself.
        result = investigate(algebra, rng=random.Random(1))
        verdict = result.classification
        print(f"  classification: {verdict.summary()}")
        if result.lemma2_generator is not None:
            print(f"    Lemma 2 generator found: {result.lemma2_generator!r} "
                  f"(its powers embed shortest-path routing)")
        for reason in verdict.reasons:
            print(f"    - {reason}")
        assign_random_weights(graph, algebra, rng=rng)
        # Even when compressibility is open (Section 6), Proposition 2
        # guarantees regular algebras route exactly with destination tables,
        # which is what the compiler falls back to.
        scheme = build_scheme(graph, algebra)
        report = evaluate_scheme(graph, algebra, scheme)
        print(f"  scheme: {type(scheme).__name__}")
        print(f"  routing: {report.summary()}\n")


if __name__ == "__main__":
    main()
